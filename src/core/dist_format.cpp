#include "core/dist_format.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <mutex>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace hpfnt {

DistFormat DistFormat::block() { return DistFormat(FormatKind::kBlock, 1); }

DistFormat DistFormat::vienna_block() {
  return DistFormat(FormatKind::kViennaBlock, 1);
}

DistFormat DistFormat::general_block(std::vector<Extent> upper_bounds) {
  DistFormat f(FormatKind::kGeneralBlock, 1);
  f.data_ = std::move(upper_bounds);
  return f;
}

DistFormat DistFormat::general_block_sizes(const std::vector<Extent>& sizes) {
  std::vector<Extent> bounds;
  bounds.reserve(sizes.size());
  Extent acc = 0;
  for (Extent s : sizes) {
    if (s < 0) throw ConformanceError("GENERAL_BLOCK sizes must be >= 0");
    acc += s;
    bounds.push_back(acc);
  }
  if (!bounds.empty()) bounds.pop_back();  // last block's end is implied (N)
  return general_block(std::move(bounds));
}

DistFormat DistFormat::cyclic(Extent k) {
  if (k < 1) throw ConformanceError("CYCLIC(k) requires k >= 1");
  return DistFormat(FormatKind::kCyclic, k);
}

DistFormat DistFormat::collapsed() {
  return DistFormat(FormatKind::kCollapsed, 1);
}

DistFormat DistFormat::indirect(std::vector<Extent> owner_map) {
  DistFormat f(FormatKind::kIndirect, 1);
  f.data_ = std::move(owner_map);
  return f;
}

DistFormat DistFormat::user_defined(std::string name, UserDimFunction fn) {
  DistFormat f(FormatKind::kUserDefined, 1);
  f.user_name_ = std::move(name);
  f.user_fn_ = std::move(fn);
  return f;
}

std::string DistFormat::to_string() const {
  switch (kind_) {
    case FormatKind::kBlock:
      return "BLOCK";
    case FormatKind::kViennaBlock:
      return "VIENNA_BLOCK";
    case FormatKind::kGeneralBlock: {
      std::vector<std::string> parts;
      parts.reserve(data_.size());
      for (Extent b : data_) parts.push_back(std::to_string(b));
      return "GENERAL_BLOCK(/" + join(parts, ",") + "/)";
    }
    case FormatKind::kCyclic:
      return k_ == 1 ? "CYCLIC" : cat("CYCLIC(", k_, ")");
    case FormatKind::kCollapsed:
      return ":";
    case FormatKind::kIndirect:
      return cat("INDIRECT(<", data_.size(), " entries>)");
    case FormatKind::kUserDefined:
      return "USER(" + user_name_ + ")";
  }
  return "?";
}

bool operator==(const DistFormat& a, const DistFormat& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case FormatKind::kBlock:
    case FormatKind::kViennaBlock:
    case FormatKind::kCollapsed:
      return true;
    case FormatKind::kCyclic:
      return a.k_ == b.k_;
    case FormatKind::kGeneralBlock:
    case FormatKind::kIndirect:
      return a.data_ == b.data_;
    case FormatKind::kUserDefined:
      return a.user_name_ == b.user_name_;
  }
  return false;
}

namespace {
Extent ceil_div(Extent a, Extent b) { return (a + b - 1) / b; }
}  // namespace

struct DimMapping::SegmentMemo {
  static constexpr std::size_t kMaxEntries = 32;
  std::mutex mu;
  std::map<std::array<Index1, 3>, std::shared_ptr<const DimSegmentList>>
      entries;
};

DimMapping DimMapping::bind(const DistFormat& format, Extent n, Extent np) {
  if (n < 0) throw ConformanceError("dimension extent must be >= 0");
  if (np < 1) throw ConformanceError("target extent must be >= 1");
  DimMapping m;
  m.kind_ = format.kind();
  m.n_ = n;
  m.np_ = np;
  m.seg_memo_ = std::make_shared<SegmentMemo>();
  switch (format.kind()) {
    case FormatKind::kBlock:
      m.q_ = n == 0 ? 1 : ceil_div(n, np);
      break;
    case FormatKind::kViennaBlock:
      m.vb_f_ = n / np;
      m.vb_r_ = n % np;
      break;
    case FormatKind::kCyclic:
      m.q_ = format.cyclic_k();
      break;
    case FormatKind::kCollapsed:
      if (np != 1) {
        throw InternalError("collapsed dimensions bind with np == 1");
      }
      break;
    case FormatKind::kGeneralBlock: {
      const std::vector<Extent>& g = format.general_bounds();
      if (static_cast<Extent>(g.size()) < np - 1) {
        throw ConformanceError(
            cat("GENERAL_BLOCK needs at least NP-1 = ", np - 1,
                " bounds, got ", g.size()));
      }
      m.ends_.assign(static_cast<std::size_t>(np) + 1, 0);
      Extent prev = 0;
      for (Extent p = 1; p <= np - 1; ++p) {
        const Extent end = g[static_cast<std::size_t>(p - 1)];
        if (end < prev || end > n) {
          throw ConformanceError(
              cat("GENERAL_BLOCK bound G(", p, ") = ", end,
                  " must be nondecreasing and within [0:", n, "]"));
        }
        m.ends_[static_cast<std::size_t>(p)] = end;
        prev = end;
      }
      m.ends_[static_cast<std::size_t>(np)] = n;
      break;
    }
    case FormatKind::kIndirect: {
      const std::vector<Extent>& map = format.indirect_map();
      if (static_cast<Extent>(map.size()) != n) {
        throw ConformanceError(cat("INDIRECT map has ", map.size(),
                                   " entries for extent ", n));
      }
      auto table = std::make_shared<IndirectTable>();
      table->owner_of.assign(map.begin(), map.end());
      table->globals.resize(static_cast<std::size_t>(np));
      table->local_of.resize(static_cast<std::size_t>(n));
      for (Index1 i = 1; i <= n; ++i) {
        const Extent p = map[static_cast<std::size_t>(i - 1)];
        if (p < 1 || p > np) {
          throw ConformanceError(cat("INDIRECT owner ", p, " of index ", i,
                                     " outside 1:", np));
        }
        auto& bucket = table->globals[static_cast<std::size_t>(p - 1)];
        bucket.push_back(i);
        table->local_of[static_cast<std::size_t>(i - 1)] =
            static_cast<Extent>(bucket.size());
      }
      m.table_ = std::move(table);
      break;
    }
    case FormatKind::kUserDefined: {
      const UserDimFunction& fn = format.user_function();
      if (!fn) throw ConformanceError("user-defined format has no function");
      auto table = std::make_shared<IndirectTable>();
      table->replicated = true;
      table->owner_of.resize(static_cast<std::size_t>(n));
      table->owner_sets.resize(static_cast<std::size_t>(n));
      table->globals.resize(static_cast<std::size_t>(np));
      table->local_of.resize(static_cast<std::size_t>(n));
      for (Index1 i = 1; i <= n; ++i) {
        DimOwnerSet owners = fn(i, n, np);
        if (owners.empty()) {
          throw ConformanceError(
              cat("user-defined distribution '", format.user_name(),
                  "' mapped index ", i,
                  " to no processor (distributions must be total, §2.2)"));
        }
        for (Index1 p : owners) {
          if (p < 1 || p > np) {
            throw ConformanceError(cat("user-defined owner ", p,
                                       " of index ", i, " outside 1:", np));
          }
        }
        // User functions return owner sets in arbitrary order; the primary
        // owner — the one owner()/local_index() report — is the canonical
        // *minimum* position, the replica convention everywhere in the
        // model (owners.front() would elect whichever replica the user
        // happened to list first).
        Index1 primary = owners.front();
        for (Index1 p : owners) primary = std::min(primary, p);
        table->owner_of[static_cast<std::size_t>(i - 1)] = primary;
        auto& bucket =
            table->globals[static_cast<std::size_t>(primary - 1)];
        bucket.push_back(i);
        table->local_of[static_cast<std::size_t>(i - 1)] =
            static_cast<Extent>(bucket.size());
        // Replicas beyond the primary owner also store the element; they
        // are appended to those owners' global lists so local enumeration
        // and counts see them.
        for (Index1 p : owners) {
          if (p == primary) continue;
          table->globals[static_cast<std::size_t>(p - 1)].push_back(i);
        }
        table->owner_sets[static_cast<std::size_t>(i - 1)] = owners;
      }
      for (auto& bucket : table->globals) {
        std::sort(bucket.begin(), bucket.end());
      }
      m.table_ = std::move(table);
      break;
    }
  }
  return m;
}

void DimMapping::check_index(Index1 i) const {
  if (i < 1 || i > n_) {
    throw MappingError(cat("normalized index ", i, " outside 1:", n_));
  }
}

void DimMapping::check_position(Index1 p) const {
  if (p < 1 || p > np_) {
    throw MappingError(cat("target position ", p, " outside 1:", np_));
  }
}

Index1 DimMapping::owner(Index1 i) const {
  check_index(i);
  switch (kind_) {
    case FormatKind::kBlock:
      return (i - 1) / q_ + 1;
    case FormatKind::kViennaBlock: {
      const Extent head = vb_r_ * (vb_f_ + 1);
      if (i <= head) return (i - 1) / (vb_f_ + 1) + 1;
      return vb_r_ + (i - head - 1) / vb_f_ + 1;
    }
    case FormatKind::kCyclic:
      return ((i - 1) / q_) % np_ + 1;
    case FormatKind::kCollapsed:
      return 1;
    case FormatKind::kGeneralBlock: {
      // First p with ends_[p] >= i: blocks are (ends_[p-1], ends_[p]].
      const auto it =
          std::lower_bound(ends_.begin() + 1, ends_.end(), i);
      return static_cast<Index1>(it - ends_.begin());
    }
    case FormatKind::kIndirect:
    case FormatKind::kUserDefined:
      return table_->owner_of[static_cast<std::size_t>(i - 1)];
  }
  throw InternalError("unreachable format kind");
}

DimOwnerSet DimMapping::owners(Index1 i) const {
  if (kind_ == FormatKind::kUserDefined) {
    check_index(i);
    return table_->owner_sets[static_cast<std::size_t>(i - 1)];
  }
  DimOwnerSet out;
  out.push_back(owner(i));
  return out;
}

Index1 DimMapping::local_index(Index1 i) const {
  check_index(i);
  switch (kind_) {
    case FormatKind::kBlock:
      return i - ((i - 1) / q_) * q_;
    case FormatKind::kViennaBlock: {
      const Extent head = vb_r_ * (vb_f_ + 1);
      if (i <= head) return (i - 1) % (vb_f_ + 1) + 1;
      return (i - head - 1) % vb_f_ + 1;
    }
    case FormatKind::kCyclic:
      return ((i - 1) / (q_ * np_)) * q_ + (i - 1) % q_ + 1;
    case FormatKind::kCollapsed:
      return i;
    case FormatKind::kGeneralBlock: {
      const Index1 p = owner(i);
      return i - ends_[static_cast<std::size_t>(p - 1)];
    }
    case FormatKind::kIndirect:
    case FormatKind::kUserDefined:
      return table_->local_of[static_cast<std::size_t>(i - 1)];
  }
  throw InternalError("unreachable format kind");
}

Extent DimMapping::local_count(Index1 p) const {
  check_position(p);
  switch (kind_) {
    case FormatKind::kBlock:
      return std::clamp<Extent>(n_ - (p - 1) * q_, 0, q_);
    case FormatKind::kViennaBlock:
      return vb_f_ + (p <= vb_r_ ? 1 : 0);
    case FormatKind::kCyclic: {
      const Extent cycle = q_ * np_;
      const Extent full = (n_ / cycle) * q_;
      const Extent rem = n_ % cycle;
      return full + std::clamp<Extent>(rem - (p - 1) * q_, 0, q_);
    }
    case FormatKind::kCollapsed:
      return n_;
    case FormatKind::kGeneralBlock:
      return ends_[static_cast<std::size_t>(p)] -
             ends_[static_cast<std::size_t>(p - 1)];
    case FormatKind::kIndirect:
    case FormatKind::kUserDefined:
      return static_cast<Extent>(
          table_->globals[static_cast<std::size_t>(p - 1)].size());
  }
  throw InternalError("unreachable format kind");
}

Index1 DimMapping::global_index(Index1 p, Index1 l) const {
  check_position(p);
  if (l < 1 || l > local_count(p)) {
    throw MappingError(cat("local index ", l, " outside 1:", local_count(p),
                           " on position ", p));
  }
  switch (kind_) {
    case FormatKind::kBlock:
      return (p - 1) * q_ + l;
    case FormatKind::kViennaBlock: {
      const Extent start =
          (p - 1) * vb_f_ + std::min<Extent>(p - 1, vb_r_) + 1;
      return start + l - 1;
    }
    case FormatKind::kCyclic: {
      const Extent cycle = (l - 1) / q_;
      const Extent offset = (l - 1) % q_;
      return cycle * q_ * np_ + (p - 1) * q_ + offset + 1;
    }
    case FormatKind::kCollapsed:
      return l;
    case FormatKind::kGeneralBlock:
      return ends_[static_cast<std::size_t>(p - 1)] + l;
    case FormatKind::kIndirect:
    case FormatKind::kUserDefined:
      return table_->globals[static_cast<std::size_t>(p - 1)]
                            [static_cast<std::size_t>(l - 1)];
  }
  throw InternalError("unreachable format kind");
}

void DimMapping::for_each_owned(Index1 p,
                                const std::function<void(Index1)>& fn) const {
  const Extent count = local_count(p);
  if (is_contiguous()) {
    const auto [first, last] = block_range(p);
    for (Index1 i = first; i <= last; ++i) fn(i);
    return;
  }
  for (Index1 l = 1; l <= count; ++l) fn(global_index(p, l));
}

std::pair<Index1, Index1> DimMapping::segment_range(Index1 i) const {
  check_index(i);
  switch (kind_) {
    case FormatKind::kBlock:
    case FormatKind::kViennaBlock:
    case FormatKind::kGeneralBlock:
      return block_range(owner(i));
    case FormatKind::kCollapsed:
      return {1, n_};
    case FormatKind::kCyclic: {
      const Index1 first = ((i - 1) / q_) * q_ + 1;
      return {first, std::min<Index1>(first + q_ - 1, n_)};
    }
    case FormatKind::kIndirect: {
      const std::vector<Extent>& own = table_->owner_of;
      const Extent o = own[static_cast<std::size_t>(i - 1)];
      Index1 lo = i, hi = i;
      while (lo > 1 && own[static_cast<std::size_t>(lo - 2)] == o) --lo;
      while (hi < n_ && own[static_cast<std::size_t>(hi)] == o) ++hi;
      return {lo, hi};
    }
    case FormatKind::kUserDefined: {
      const std::vector<DimOwnerSet>& sets = table_->owner_sets;
      const DimOwnerSet& s = sets[static_cast<std::size_t>(i - 1)];
      Index1 lo = i, hi = i;
      while (lo > 1 && sets[static_cast<std::size_t>(lo - 2)] == s) --lo;
      while (hi < n_ && sets[static_cast<std::size_t>(hi)] == s) ++hi;
      return {lo, hi};
    }
  }
  throw InternalError("unreachable format kind");
}

std::pair<Index1, Index1> DimMapping::block_range(Index1 p) const {
  check_position(p);
  switch (kind_) {
    case FormatKind::kBlock: {
      const Index1 first = (p - 1) * q_ + 1;
      return {first, first + local_count(p) - 1};
    }
    case FormatKind::kViennaBlock: {
      const Index1 first = (p - 1) * vb_f_ + std::min<Extent>(p - 1, vb_r_) + 1;
      return {first, first + local_count(p) - 1};
    }
    case FormatKind::kGeneralBlock:
      return {ends_[static_cast<std::size_t>(p - 1)] + 1,
              ends_[static_cast<std::size_t>(p)]};
    case FormatKind::kCollapsed:
      return {1, n_};
    default:
      throw InternalError("block_range on a non-contiguous format");
  }
}

DimSegmentList DimMapping::compute_segment_list(const Triplet& t) const {
  DimSegmentList out;
  const Extent len = t.size();
  if (len == 0) return out;
  check_index(t.lower());
  check_index(t.last());
  const Index1 step = t.stride();
  Extent k = 0;
  while (k < len) {
    const Index1 i = t.at(k);
    DimOwnerSet own = owners(i);
    ++out.probes;
    const auto [seg_lo, seg_hi] = segment_range(i);
    Extent span = step > 0 ? (seg_hi - i) / step : (i - seg_lo) / (-step);
    span = std::min(span, len - 1 - k);
    if (!out.segments.empty() && out.segments.back().owners == own) {
      out.segments.back().count += span + 1;
    } else {
      DimSegment s;
      s.lo = i;
      s.count = span + 1;
      s.local_offset = local_index(i);
      s.owners = std::move(own);
      out.segments.push_back(std::move(s));
    }
    k += span + 1;
  }
  return out;
}

std::uint64_t DimMapping::content_digest() const {
  if (kind_ != FormatKind::kIndirect && kind_ != FormatKind::kUserDefined) {
    throw InternalError("content_digest on a non-table-backed format");
  }
  std::uint64_t d = table_->digest.load(std::memory_order_acquire);
  if (d != 0) return d;
  d = fnv1a_mix(fnv1a_mix(fnv1a_basis, n_), np_);
  if (kind_ == FormatKind::kUserDefined) {
    // owner_sets is stored in the order the user function returned it, but
    // the order carries no mapping content — digest a sorted copy so two
    // functions producing the same sets in different orders share a digest.
    // (Safe for plan keys even though run *segmentation* compares sets
    // order-sensitively: a split vs merged equal-set segment prices the
    // same aggregated StepStats — transfers bucket per (src,dst) pair,
    // computes per processor, and the replica decisions use only
    // min_owner/membership, all order-independent.)
    for (const DimOwnerSet& set : table_->owner_sets) {
      DimOwnerSet sorted_set = set;
      std::sort(sorted_set.begin(), sorted_set.end());
      d = fnv1a_mix(d, static_cast<Extent>(sorted_set.size()));
      for (Index1 p : sorted_set) d = fnv1a_mix(d, p);
    }
  } else {
    for (Extent p : table_->owner_of) d = fnv1a_mix(d, p);
  }
  if (d == 0) d = 1;  // reserve 0 for "not yet computed"
  table_->digest.store(d, std::memory_order_release);
  return d;
}

std::shared_ptr<const DimSegmentList> DimMapping::segment_list(
    const Triplet& t, Extent* probes_charged) const {
  if (!seg_memo_) {  // default-constructed mapping: no sharing possible
    auto fresh = std::make_shared<const DimSegmentList>(compute_segment_list(t));
    if (probes_charged) *probes_charged = fresh->probes;
    return fresh;
  }
  const std::array<Index1, 3> key{t.lower(), t.upper(), t.stride()};
  {
    std::lock_guard<std::mutex> lock(seg_memo_->mu);
    auto it = seg_memo_->entries.find(key);
    if (it != seg_memo_->entries.end()) {
      if (probes_charged) *probes_charged = 0;
      return it->second;
    }
  }
  auto fresh = std::make_shared<const DimSegmentList>(compute_segment_list(t));
  if (probes_charged) *probes_charged = fresh->probes;
  std::lock_guard<std::mutex> lock(seg_memo_->mu);
  if (seg_memo_->entries.size() >= SegmentMemo::kMaxEntries &&
      seg_memo_->entries.count(key) == 0) {
    seg_memo_->entries.clear();  // small and recurring; clear wholesale
  }
  auto& slot = seg_memo_->entries[key];
  if (!slot) slot = fresh;  // keep the first on a race
  return slot;
}

}  // namespace hpfnt
