#include "core/alignment.hpp"

#include <algorithm>
#include <set>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace hpfnt {

AlignmentFunction::AlignmentFunction(IndexDomain alignee_domain,
                                     IndexDomain base_domain,
                                     std::vector<BaseDim> base_dims,
                                     AlignBoundsPolicy policy)
    : alignee_(std::move(alignee_domain)),
      base_(std::move(base_domain)),
      dims_(std::move(base_dims)),
      policy_(policy) {
  if (static_cast<int>(dims_.size()) != base_.rank()) {
    throw ConformanceError(cat("alignment specifies ", dims_.size(),
                               " base subscripts for a base of rank ",
                               base_.rank()));
  }
  for (const BaseDim& d : dims_) {
    if (d.kind == BaseDim::Kind::kExpr) {
      if (d.alignee_dim < 0 || d.alignee_dim >= alignee_.rank()) {
        throw InternalError("alignment expression references a bad dimension");
      }
    }
  }
}

bool AlignmentFunction::replicates() const noexcept {
  for (const BaseDim& d : dims_) {
    if (d.kind == BaseDim::Kind::kReplicated) return true;
  }
  return false;
}

Extent AlignmentFunction::image_count() const noexcept {
  Extent count = 1;
  for (std::size_t j = 0; j < dims_.size(); ++j) {
    if (dims_[j].kind == BaseDim::Kind::kReplicated) {
      count *= base_.extent(static_cast<int>(j));
    }
  }
  return count;
}

Index1 AlignmentFunction::clamp_or_throw(Index1 value, int base_dim) const {
  const Index1 lo = base_.lower(base_dim);
  const Index1 hi = base_.upper(base_dim);
  if (value >= lo && value <= hi) return value;
  if (policy_ == AlignBoundsPolicy::kClamp) {
    // Paper §5.1: "the value y associated with dimension j is replaced by
    // ŷ = MIN(Uj, y)"; we clamp at both ends.
    return std::clamp(value, lo, hi);
  }
  throw ConformanceError(cat("alignment image ", value,
                             " leaves base dimension ", base_dim + 1, " [",
                             lo, ":", hi, "]"));
}

Index1 AlignmentFunction::eval_dim(int base_dim,
                                   const IndexTuple& alignee_index) const {
  const BaseDim& d = dims_[static_cast<std::size_t>(base_dim)];
  switch (d.kind) {
    case BaseDim::Kind::kConst:
      return clamp_or_throw(d.constant, base_dim);
    case BaseDim::Kind::kExpr:
      return clamp_or_throw(
          d.expr.eval(alignee_index[static_cast<std::size_t>(d.alignee_dim)]),
          base_dim);
    case BaseDim::Kind::kReplicated:
      throw InternalError("eval_dim on a replicated base dimension");
  }
  throw InternalError("unreachable base-dim kind");
}

IndexTuple AlignmentFunction::image(const IndexTuple& alignee_index) const {
  if (!alignee_.contains(alignee_index)) {
    throw MappingError("alignee index outside the alignee's index domain");
  }
  IndexTuple out;
  out.resize(dims_.size());
  for (std::size_t j = 0; j < dims_.size(); ++j) {
    if (dims_[j].kind == BaseDim::Kind::kReplicated) {
      out[j] = base_.lower(static_cast<int>(j));
    } else {
      out[j] = eval_dim(static_cast<int>(j), alignee_index);
    }
  }
  return out;
}

void AlignmentFunction::for_each_image(
    const IndexTuple& alignee_index,
    const std::function<void(const IndexTuple&)>& fn) const {
  IndexTuple current = image(alignee_index);
  // Enumerate the cartesian product over replicated dimensions.
  std::vector<int> rep_dims;
  for (std::size_t j = 0; j < dims_.size(); ++j) {
    if (dims_[j].kind == BaseDim::Kind::kReplicated) {
      rep_dims.push_back(static_cast<int>(j));
    }
  }
  if (rep_dims.empty()) {
    fn(current);
    return;
  }
  std::vector<Extent> pos(rep_dims.size(), 0);
  while (true) {
    fn(current);
    std::size_t k = 0;
    for (; k < rep_dims.size(); ++k) {
      const int j = rep_dims[k];
      const Triplet& t = base_.dim(j);
      if (++pos[k] < t.size()) {
        current[static_cast<std::size_t>(j)] = t.at(pos[k]);
        break;
      }
      pos[k] = 0;
      current[static_cast<std::size_t>(j)] = t.lower();
    }
    if (k == rep_dims.size()) return;
  }
}

void AlignmentFunction::append_signature(std::string& out) const {
  alignee_.append_signature(out);
  base_.append_signature(out);
  out += static_cast<char>('p' + static_cast<int>(policy_));
  for (const BaseDim& d : dims_) {
    switch (d.kind) {
      case BaseDim::Kind::kConst:
        out += 'c';
        append_raw(out, d.constant);
        break;
      case BaseDim::Kind::kExpr:
        out += 'e';
        append_raw(out, static_cast<Index1>(d.alignee_dim));
        d.expr.append_signature(out);
        break;
      case BaseDim::Kind::kReplicated:
        out += '*';
        break;
    }
  }
}

bool AlignmentFunction::structurally_equal(
    const AlignmentFunction& other) const {
  std::string mine, theirs;
  append_signature(mine);
  other.append_signature(theirs);
  return mine == theirs;
}

bool AlignmentFunction::is_identity() const {
  if (alignee_ != base_) return false;
  for (std::size_t j = 0; j < dims_.size(); ++j) {
    const BaseDim& d = dims_[j];
    if (d.kind != BaseDim::Kind::kExpr ||
        d.alignee_dim != static_cast<int>(j)) {
      return false;
    }
    const std::optional<AlignExpr::Linear> lin = d.expr.linear();
    if (!lin || lin->a != 1 || lin->b != 0) return false;
  }
  return true;
}

AlignmentFunction AlignmentFunction::identity(const IndexDomain& alignee_domain,
                                              const IndexDomain& base_domain) {
  return AlignSpec::colons(alignee_domain.rank())
      .reduce(alignee_domain, base_domain);
}

std::string AlignmentFunction::to_string() const {
  std::vector<std::string> parts;
  parts.reserve(dims_.size());
  for (const BaseDim& d : dims_) {
    switch (d.kind) {
      case BaseDim::Kind::kConst:
        parts.push_back(std::to_string(d.constant));
        break;
      case BaseDim::Kind::kExpr:
        parts.push_back(d.expr.to_string(cat("J", d.alignee_dim + 1)));
        break;
      case BaseDim::Kind::kReplicated:
        parts.push_back("*");
        break;
    }
  }
  return "(" + join(parts, ",") + ")";
}

AlignSpec::AlignSpec(std::vector<AligneeSub> alignee_subs,
                     std::vector<BaseSub> base_subs)
    : alignee_subs_(std::move(alignee_subs)), base_subs_(std::move(base_subs)) {}

AlignSpec AlignSpec::colons(int rank) {
  std::vector<AligneeSub> a(static_cast<std::size_t>(rank),
                            AligneeSub::colon());
  std::vector<BaseSub> b(static_cast<std::size_t>(rank), BaseSub::colon());
  return AlignSpec(std::move(a), std::move(b));
}

AlignmentFunction AlignSpec::reduce(const IndexDomain& alignee_domain,
                                    const IndexDomain& base_domain,
                                    AlignBoundsPolicy policy) const {
  if (static_cast<int>(alignee_subs_.size()) != alignee_domain.rank()) {
    throw ConformanceError(
        cat("ALIGN lists ", alignee_subs_.size(),
            " alignee subscripts for an alignee of rank ",
            alignee_domain.rank()));
  }
  if (static_cast<int>(base_subs_.size()) != base_domain.rank()) {
    throw ConformanceError(cat("ALIGN lists ", base_subs_.size(),
                               " base subscripts for a base of rank ",
                               base_domain.rank()));
  }

  // Dummy ids declared in the alignee must be distinct.
  std::set<int> declared;
  for (const AligneeSub& s : alignee_subs_) {
    if (s.kind == AligneeSub::Kind::kDummy) {
      if (!declared.insert(s.dummy_id).second) {
        throw ConformanceError("an align-dummy occurs twice in the alignee");
      }
    }
  }

  // Match ":" subscripts in the alignee to triplet/":" subscripts in the
  // base, in left-to-right order (Fortran array-assignment analogy, §5.1).
  std::vector<int> colon_axes;
  for (int i = 0; i < alignee_domain.rank(); ++i) {
    if (alignee_subs_[static_cast<std::size_t>(i)].kind ==
        AligneeSub::Kind::kColon) {
      colon_axes.push_back(i);
    }
  }
  std::vector<int> triplet_axes;
  for (int j = 0; j < base_domain.rank(); ++j) {
    const BaseSub::Kind k = base_subs_[static_cast<std::size_t>(j)].kind;
    if (k == BaseSub::Kind::kTriplet || k == BaseSub::Kind::kColon) {
      triplet_axes.push_back(j);
    }
  }
  if (colon_axes.size() != triplet_axes.size()) {
    throw ConformanceError(
        cat("ALIGN has ", colon_axes.size(), " \":\" alignee subscripts but ",
            triplet_axes.size(), " subscript-triplets in the base"));
  }

  // Assemble the reduced form. Dummy ids are mapped to alignee dimensions.
  std::vector<int> dummy_axis_of_base(base_subs_.size(), -1);
  std::vector<AlignmentFunction::BaseDim> dims(base_subs_.size());

  // Pass 1: explicit expressions (dummyless or one user dummy).
  for (std::size_t j = 0; j < base_subs_.size(); ++j) {
    const BaseSub& t = base_subs_[j];
    switch (t.kind) {
      case BaseSub::Kind::kStar:
        dims[j].kind = AlignmentFunction::BaseDim::Kind::kReplicated;
        break;
      case BaseSub::Kind::kExpr: {
        std::optional<int> used = t.expr.used_dummy();
        if (!used.has_value()) {
          dims[j].kind = AlignmentFunction::BaseDim::Kind::kConst;
          dims[j].constant = t.expr.eval_const();
        } else {
          // Locate the alignee axis declaring this dummy.
          int axis = -1;
          for (std::size_t i = 0; i < alignee_subs_.size(); ++i) {
            const AligneeSub& s = alignee_subs_[i];
            if (s.kind == AligneeSub::Kind::kDummy && s.dummy_id == *used) {
              axis = static_cast<int>(i);
              break;
            }
          }
          if (axis < 0) {
            throw ConformanceError(
                cat("base subscript ", j + 1,
                    " uses an align-dummy not declared in the alignee"));
          }
          dims[j].kind = AlignmentFunction::BaseDim::Kind::kExpr;
          dims[j].alignee_dim = axis;
          dims[j].expr = t.expr;
          dummy_axis_of_base[j] = axis;
        }
        break;
      }
      case BaseSub::Kind::kTriplet:
      case BaseSub::Kind::kColon:
        break;  // handled in pass 2
    }
  }

  // Each user dummy may feed at most one base subscript.
  {
    std::set<int> used_axes;
    for (int axis : dummy_axis_of_base) {
      if (axis < 0) continue;
      if (!used_axes.insert(axis).second) {
        throw ConformanceError(
            "an align-dummy occurs in more than one base subscript (§5.1 "
            "allows each J_i in at most one y_j)");
      }
    }
  }

  // Pass 2: the ":"/triplet matching — transformation 1 of §5.1.
  for (std::size_t k = 0; k < colon_axes.size(); ++k) {
    const int i = colon_axes[k];
    const int j = triplet_axes[k];
    const BaseSub& sub = base_subs_[static_cast<std::size_t>(j)];
    const Triplet t = sub.kind == BaseSub::Kind::kColon
                          ? base_domain.dim(j)
                          : sub.triplet;
    if (sub.kind == BaseSub::Kind::kTriplet) {
      if (!t.empty() && (!base_domain.dim(j).contains(t.lower()) ||
                         !base_domain.dim(j).contains(t.last()))) {
        throw ConformanceError(cat("base triplet ", t.to_string(),
                                   " leaves base dimension ", j + 1, " ",
                                   base_domain.dim(j).to_string()));
      }
    }
    const Extent alignee_extent = alignee_domain.extent(i);
    if (alignee_extent > t.size()) {
      throw ConformanceError(
          cat("alignee extent ", alignee_extent, " exceeds the ", t.size(),
              " positions of base triplet ", t.to_string(), " (§5.1 requires "
              "U_i - L_i + 1 <= MAX((UT - LT + ST)/ST, 0))"));
    }
    // s_i := fresh dummy J ranging over [L_i:U_i];
    // t_j := (J - L_i) * ST + LT.
    AlignExpr j_expr = AlignExpr::dummy(-1000 - i);  // fresh, internal id
    AlignExpr mapped =
        (j_expr - alignee_domain.lower(i)) * t.stride() + t.lower();
    dims[static_cast<std::size_t>(j)].kind =
        AlignmentFunction::BaseDim::Kind::kExpr;
    dims[static_cast<std::size_t>(j)].alignee_dim = i;
    dims[static_cast<std::size_t>(j)].expr = mapped;
  }

  // Alignee "*" axes collapse: they feed no base subscript, which the
  // reduced representation expresses by simply not referencing that axis.
  return AlignmentFunction(alignee_domain, base_domain, std::move(dims),
                           policy);
}

std::string AlignSpec::to_string() const {
  std::vector<std::string> lhs;
  int next_dummy = 1;
  std::vector<std::string> dummy_names(alignee_subs_.size());
  for (std::size_t i = 0; i < alignee_subs_.size(); ++i) {
    const AligneeSub& s = alignee_subs_[i];
    switch (s.kind) {
      case AligneeSub::Kind::kColon:
        lhs.push_back(":");
        break;
      case AligneeSub::Kind::kStar:
        lhs.push_back("*");
        break;
      case AligneeSub::Kind::kDummy: {
        std::string name =
            s.dummy_name.empty() ? cat("J", next_dummy++) : s.dummy_name;
        dummy_names[i] = name;
        lhs.push_back(name);
        break;
      }
    }
  }
  std::vector<std::string> rhs;
  for (const BaseSub& t : base_subs_) {
    switch (t.kind) {
      case BaseSub::Kind::kColon:
        rhs.push_back(":");
        break;
      case BaseSub::Kind::kStar:
        rhs.push_back("*");
        break;
      case BaseSub::Kind::kTriplet:
        rhs.push_back(t.triplet.to_string());
        break;
      case BaseSub::Kind::kExpr: {
        std::optional<int> used = t.expr.used_dummy();
        std::string name = "J";
        if (used.has_value()) {
          for (std::size_t i = 0; i < alignee_subs_.size(); ++i) {
            const AligneeSub& s = alignee_subs_[i];
            if (s.kind == AligneeSub::Kind::kDummy && s.dummy_id == *used) {
              name = dummy_names[i].empty() ? cat("J", i + 1) : dummy_names[i];
            }
          }
        }
        rhs.push_back(t.expr.to_string(name));
        break;
      }
    }
  }
  return "(" + join(lhs, ",") + ") WITH (" + join(rhs, ",") + ")";
}

}  // namespace hpfnt
