// Array descriptors. A DistArray is the model-level description of a data
// array (or scalar, as a rank-0 array, §2.2): its name, element type, index
// domain, and the attribute flags that drive mapping semantics — DYNAMIC
// (may be REDISTRIBUTE/REALIGNed, §4.2/§5.2) and ALLOCATABLE (created and
// destroyed by ALLOCATE/DEALLOCATE, §6). Dummy arguments are marked so the
// procedure rules of §7 can restore mappings on exit.
//
// Descriptors carry no data; element storage lives in the simulated
// processor memories (exec/storage).
#pragma once

#include <string>
#include <vector>

#include "core/index_domain.hpp"
#include "core/types.hpp"

namespace hpfnt {

enum class ElemType { kReal, kDoublePrecision, kInteger, kLogical };

/// Declared shadow (ghost-region) widths of one array dimension, per the
/// HPF/JA SHADOW directive: `left` ghost cells below each owner's local
/// range and `right` above it. Zero widths mean no shadow — the default —
/// and every pre-shadow behavior is unchanged.
struct ShadowWidth {
  Extent left = 0;
  Extent right = 0;

  friend bool operator==(const ShadowWidth& a, const ShadowWidth& b) {
    return a.left == b.left && a.right == b.right;
  }
};

/// Storage size in bytes, used by the communication cost model.
Extent elem_bytes(ElemType type);

const char* elem_type_name(ElemType type);

struct ArrayAttrs {
  bool dynamic = false;      // DYNAMIC directive given
  bool allocatable = false;  // ALLOCATABLE attribute
};

class DistArray {
 public:
  DistArray(ArrayId id, std::string name, ElemType type, IndexDomain domain,
            ArrayAttrs attrs);

  /// Allocatable declaration: the shape is deferred until ALLOCATE.
  DistArray(ArrayId id, std::string name, ElemType type, int rank,
            ArrayAttrs attrs);

  ArrayId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  ElemType type() const noexcept { return type_; }
  int rank() const noexcept { return rank_; }
  const ArrayAttrs& attrs() const noexcept { return attrs_; }

  bool is_dynamic() const noexcept { return attrs_.dynamic; }
  bool is_allocatable() const noexcept { return attrs_.allocatable; }

  /// True between creation (declaration, or ALLOCATE for allocatables) and
  /// DEALLOCATE. Only created arrays participate in the alignment forest
  /// (§2.4 considers arrays that "have been created").
  bool is_created() const noexcept { return created_; }

  /// The array's standard index domain I^A. Only valid when created.
  const IndexDomain& domain() const;

  bool is_dummy() const noexcept { return is_dummy_; }

  /// Declared per-dimension shadow widths (SHADOW directive). Empty when
  /// the array has no shadow; otherwise exactly rank() entries.
  const std::vector<ShadowWidth>& shadow() const noexcept { return shadow_; }
  bool has_shadow() const noexcept;

  /// Declares the shadow widths (one per dimension, all >= 0). Storage
  /// layers materialize the ghost cells when the array's storage is
  /// (re)created.
  void set_shadow(std::vector<ShadowWidth> widths);

  Extent size() const { return domain().size(); }
  Extent bytes() const { return size() * elem_bytes(type_); }

  std::string to_string() const;

 private:
  friend class DataEnv;

  void create(IndexDomain domain);
  void destroy();
  void mark_dummy() noexcept { is_dummy_ = true; }
  void mark_dynamic() noexcept { attrs_.dynamic = true; }

  ArrayId id_;
  std::string name_;
  ElemType type_;
  int rank_;
  IndexDomain domain_;
  ArrayAttrs attrs_;
  std::vector<ShadowWidth> shadow_;  // empty, or one entry per dimension
  bool created_ = false;
  bool is_dummy_ = false;
};

}  // namespace hpfnt
