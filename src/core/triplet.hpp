// Subscript triplets [lower : upper : stride] (Fortran 90 R619; paper §2.1).
//
// A triplet denotes the ordered index sequence lower, lower+stride, ... that
// does not pass upper. Strides may be negative (descending sequences) but
// never zero. Triplets are the building block of index domains, array
// sections, and the section subscripts of distribution targets.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace hpfnt {

class Triplet {
 public:
  /// Degenerate triplet [1:1:1]; useful as a placeholder.
  Triplet() : lower_(1), upper_(1), stride_(1) {}

  /// [lower : upper] with stride 1.
  Triplet(Index1 lower, Index1 upper) : Triplet(lower, upper, 1) {}

  /// [lower : upper : stride]; throws MappingError when stride == 0.
  Triplet(Index1 lower, Index1 upper, Index1 stride);

  /// Triplet holding the single index i, i.e. [i:i:1].
  static Triplet single(Index1 i) { return {i, i, 1}; }

  Index1 lower() const noexcept { return lower_; }
  Index1 upper() const noexcept { return upper_; }
  Index1 stride() const noexcept { return stride_; }

  /// Number of indices in the sequence: MAX((upper-lower+stride)/stride, 0),
  /// the Fortran 90 section-size formula the paper reuses in §5.1.
  Extent size() const noexcept;

  bool empty() const noexcept { return size() == 0; }

  /// True when the sequence contains index i.
  bool contains(Index1 i) const noexcept;

  /// k-th element of the sequence, k in [0, size()). Unchecked.
  Index1 at(Extent k) const noexcept { return lower_ + k * stride_; }

  /// Position of index i in the sequence (inverse of at). Requires
  /// contains(i); throws MappingError otherwise.
  Extent position_of(Index1 i) const;

  /// The last index actually reached (lower + (size-1)*stride).
  /// Requires a non-empty triplet.
  Index1 last() const;

  /// True iff stride == 1 ("standard" per paper §2.1).
  bool is_standard() const noexcept { return stride_ == 1; }

  /// Composition: the section `inner` taken of the sequence described by
  /// this triplet. Example: [10:30:2] composed with [2:4] gives [12:16:2]
  /// (elements #2..#4, 1-based positions relative to inner's own indexing
  /// being interpreted as positions 1..size). `inner` positions are 1-based.
  Triplet subsection(const Triplet& inner) const;

  /// "l:u:s" rendering; stride omitted when 1.
  std::string to_string() const;

  /// Appends the three fixed-width fields to a binary signature — the one
  /// triplet encoder behind index-domain signatures, plan-key sections, and
  /// section-view plan signatures, so the encodings cannot drift apart.
  void append_signature(std::string& out) const;

  friend bool operator==(const Triplet& a, const Triplet& b) {
    return a.lower_ == b.lower_ && a.upper_ == b.upper_ &&
           a.stride_ == b.stride_;
  }
  friend bool operator!=(const Triplet& a, const Triplet& b) {
    return !(a == b);
  }

 private:
  Index1 lower_;
  Index1 upper_;
  Index1 stride_;
};

/// The section's extents with unit dimensions dropped — the shape Fortran
/// conformance compares, since scalar subscripts contribute extent-1
/// dimensions (shared by the assignment executor, copy_section, and
/// section expressions).
std::vector<Extent> squeezed_shape(const std::vector<Triplet>& section);

}  // namespace hpfnt
