// Index domains (paper §2.1): an index domain I of rank n is an ordered set
// of subscript tuples represented by a subscript-triplet-list of length n.
// A *standard* index domain has stride 1 in every triplet; every declared
// array A is associated with a standard index domain I^A.
//
// The domain provides membership tests, Fortran-order (column-major)
// linearization — the basis for EQUIVALENCE-style processor association
// (§3) and for local storage layout — and element iteration. Because the
// linearization is affine per dimension, any triplet-section of a domain
// decomposes into a handful of maximal flat strided segments
// (SegmentIter / for_each_segment below): the iteration-space analogue of
// the constant-owner runs of core/layout_view.hpp, and the basis of the
// segment-vectorized evaluation engine (exec/section_expr.hpp).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/triplet.hpp"
#include "core/types.hpp"

namespace hpfnt {

/// Convenience builder for one dimension of a standard domain: Dim(0, N)
/// reads like the Fortran declaration A(0:N).
struct Dim {
  Index1 lower;
  Index1 upper;
  Dim(Index1 l, Index1 u) : lower(l), upper(u) {}
  /// Fortran default lower bound: Dim(n) == 1:n.
  explicit Dim(Index1 n) : lower(1), upper(n) {}
};

class IndexDomain {
 public:
  /// Rank-0 domain: exactly one (empty) tuple. Scalars are modeled this way
  /// (paper §2.2: "treating them as if they were associated with an index
  /// domain consisting of exactly one element").
  IndexDomain() = default;

  explicit IndexDomain(std::vector<Triplet> dims) : dims_(std::move(dims)) {}

  IndexDomain(std::initializer_list<Dim> dims);

  /// Domain [1:e1, 1:e2, ...] from plain extents.
  static IndexDomain of_extents(const std::vector<Extent>& extents);

  int rank() const noexcept { return static_cast<int>(dims_.size()); }

  const Triplet& dim(int d) const { return dims_.at(static_cast<size_t>(d)); }
  const std::vector<Triplet>& dims() const noexcept { return dims_; }

  Index1 lower(int d) const { return dim(d).lower(); }
  Index1 upper(int d) const { return dim(d).upper(); }
  Extent extent(int d) const { return dim(d).size(); }

  /// Total number of indices (product of extents); 1 for rank-0.
  Extent size() const noexcept;

  bool empty() const noexcept { return size() == 0; }

  /// True iff every triplet has stride 1 (paper §2.1). Declared arrays and
  /// processor arrangements always have standard domains.
  bool is_standard() const noexcept;

  /// Membership of a subscript tuple; false if rank differs.
  bool contains(const IndexTuple& index) const noexcept;

  /// Column-major (Fortran order) position of `index`, 0-based.
  /// Throws MappingError when the tuple is not in the domain.
  Extent linearize(const IndexTuple& index) const;

  /// Inverse of linearize. Throws MappingError when out of range.
  IndexTuple delinearize(Extent position) const;

  /// Calls `fn` for every index in Fortran order (first dimension varies
  /// fastest). Rank-0 domains invoke `fn` once with the empty tuple.
  void for_each(const std::function<void(const IndexTuple&)>& fn) const;

  /// Same walk without the std::function indirection: the callback is a
  /// template parameter, so hot loops inline it. The type-erased overload
  /// above is kept for existing callers that already hold a std::function
  /// (non-template overloads win overload resolution for those).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    walk(fn);
  }

  /// The domain obtained by taking a section (one triplet per dimension,
  /// positions interpreted against this domain's index values, not
  /// positions): section of A(0:9) by [2:8:2] is the domain {2,4,6,8}
  /// rebased? No — the *domain of the section as its own object* is
  /// standard [1:size] per dimension (Fortran 90 dummy-array semantics).
  /// Use `section_parent_index` to map back.
  IndexDomain section_domain(const std::vector<Triplet>& section) const;

  /// Maps an index of the section's standard domain back to the parent
  /// domain's index. `section` must be the same list given to
  /// section_domain.
  IndexTuple section_parent_index(const std::vector<Triplet>& section,
                                  const IndexTuple& section_index) const;

  /// Validates that `section` selects only indices of this domain.
  void validate_section(const std::vector<Triplet>& section) const;

  /// "(0:10, 1:5:2)" rendering; "()" for rank-0.
  std::string to_string() const;

  /// Appends a compact, unambiguous encoding of the dimensions (rank, then
  /// each dimension's lower/upper/stride as fixed-width integers) to
  /// `out`. Two domains append equal bytes iff they are equal; used to
  /// build plan-cache keys and alignment signatures.
  void append_signature(std::string& out) const;

  friend bool operator==(const IndexDomain& a, const IndexDomain& b) {
    return a.dims_ == b.dims_;
  }
  friend bool operator!=(const IndexDomain& a, const IndexDomain& b) {
    return !(a == b);
  }

 private:
  template <typename Fn>
  void walk(Fn& fn) const {
    if (empty()) return;
    IndexTuple current;
    current.resize(static_cast<std::size_t>(rank()));
    for (int d = 0; d < rank(); ++d) {
      current[static_cast<size_t>(d)] = dims_[static_cast<size_t>(d)].lower();
    }
    if (rank() == 0) {
      fn(current);
      return;
    }
    // Odometer walk, first dimension fastest (Fortran order).
    std::vector<Extent> pos(static_cast<std::size_t>(rank()), 0);
    while (true) {
      fn(current);
      int d = 0;
      for (; d < rank(); ++d) {
        const Triplet& t = dims_[static_cast<size_t>(d)];
        if (++pos[static_cast<size_t>(d)] < t.size()) {
          current[static_cast<size_t>(d)] = t.at(pos[static_cast<size_t>(d)]);
          break;
        }
        pos[static_cast<size_t>(d)] = 0;
        current[static_cast<size_t>(d)] = t.lower();
      }
      if (d == rank()) return;
    }
  }

  std::vector<Triplet> dims_;
};

/// One maximal flat strided segment of a sectioned domain: `count` section
/// elements whose parent-domain linear positions (0-based, Fortran order)
/// are base, base+stride, base+2*stride, ... The stride may be negative
/// (descending section triplets) but is never zero for count > 1.
struct FlatSegment {
  Extent base = 0;
  Extent count = 0;
  Extent stride = 1;
};

/// Decomposes a triplet-section of a domain into maximal FlatSegments, in
/// the section's Fortran element order (so the segments' counts sum to the
/// section size and concatenating them enumerates exactly the section's
/// linear positions, in order).
///
/// Segments start as the section's dim-0 rows but merge greedily across row
/// boundaries whenever the parent positions continue the same arithmetic
/// sequence — a whole-array section is ONE segment, a column section
/// A(j, :) is one stride-`pitch` segment — the flattening of Hunt et al.'s
/// strided-loop formulation. This is the iteration-space counterpart of
/// LayoutView's constant-owner runs: run tables say WHO owns a segment,
/// FlatSegments say WHERE its canonical values live, and the evaluation
/// engine (exec/section_expr.hpp) iterates the latter with tight strided
/// loops instead of per-element IndexTuple arithmetic.
class SegmentIter {
 public:
  /// Validates `section` against `domain`. Neither is retained.
  SegmentIter(const IndexDomain& domain, const std::vector<Triplet>& section);

  /// Produces the next maximal segment; false when exhausted.
  bool next(FlatSegment& out);

 private:
  bool advance_row();  // steps the outer odometer; false at the end

  Extent row_len_ = 0;   // section[0].size() (1 for rank-0)
  Extent step0_ = 1;     // linear-position step along dimension 0
  Extent row_base_ = 0;  // linear position of the current row's first element
  SmallVector<Extent, kMaxRank> counts_;  // outer dims' section sizes
  SmallVector<Extent, kMaxRank> steps_;   // outer dims' linear-position steps
  SmallVector<Extent, kMaxRank> pos_;     // outer odometer
  bool done_ = false;
};

/// Calls `fn(const FlatSegment&)` for every maximal segment of the section.
/// Templated like IndexDomain::for_each so the segment loop inlines.
template <typename Fn>
void for_each_segment(const IndexDomain& domain,
                      const std::vector<Triplet>& section, Fn&& fn) {
  SegmentIter it(domain, section);
  FlatSegment seg;
  while (it.next(seg)) fn(seg);
}

/// The section's full segment decomposition as a value — the memoizable
/// form (exec/section_expr.hpp caches one list per operand on the compiled
/// program, the way DimMapping::segment_list memoizes owner segments).
std::vector<FlatSegment> segment_list(const IndexDomain& domain,
                                      const std::vector<Triplet>& section);

}  // namespace hpfnt
