// Alignment expressions (paper §5.1).
//
// A base subscript of an ALIGN directive is either dummyless (a scalar
// integer expression with no align-dummy) or a dummy-use expression in
// exactly one align-dummy J. The operators "+", "-", "*" form expressions
// linear in J; because linear expressions cannot express truncation at the
// ends of an alignment, the paper additionally admits the intrinsics MAX
// and MIN (LBOUND, UBOUND and SIZE are resolved to constants at binding
// time by the front end, since they only query declared shapes).
//
// AlignExpr is a small immutable expression tree with evaluation, dummy
// analysis (which dummy occurs; skew detection needs "at most one"), and
// linear-coefficient extraction for the analytic fast paths.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/types.hpp"

namespace hpfnt {

class AlignExpr {
 public:
  enum class Op { kConst, kDummy, kAdd, kSub, kMul, kNeg, kMax, kMin };

  /// The literal constant c.
  static AlignExpr constant(Index1 c);

  /// The align-dummy with (0-based) alignee-dimension id `dummy_id`.
  static AlignExpr dummy(int dummy_id);

  static AlignExpr add(AlignExpr a, AlignExpr b);
  static AlignExpr sub(AlignExpr a, AlignExpr b);
  static AlignExpr mul(AlignExpr a, AlignExpr b);
  static AlignExpr neg(AlignExpr a);
  static AlignExpr max(AlignExpr a, AlignExpr b);
  static AlignExpr min(AlignExpr a, AlignExpr b);

  Op op() const noexcept { return node_->op; }

  /// Evaluates with the given value for every dummy occurrence. (Expressions
  /// reference at most one dummy, checked at directive binding time.)
  Index1 eval(Index1 dummy_value) const;

  /// Evaluates a dummyless expression.
  Index1 eval_const() const { return eval(0); }

  /// The dummy id used, or nullopt when dummyless. Throws ConformanceError
  /// when two *different* dummies occur in one expression (skew alignment,
  /// excluded by §5.1: "Each J_i may occur in at most one y_j").
  std::optional<int> used_dummy() const;

  /// If the expression is linear a*J + b (no MAX/MIN), returns {a, b}.
  struct Linear {
    Index1 a;
    Index1 b;
  };
  std::optional<Linear> linear() const;

  /// True when the expression is strictly monotonic in its dummy wherever
  /// it is linear (|a| >= 1); MAX/MIN expressions report false.
  bool is_injective() const;

  /// Appends a compact, unambiguous encoding of the tree (one op tag per
  /// node, fixed-width constants and dummy ids) to `out`. Two expressions
  /// append equal bytes iff they have the same shape, operators, constants
  /// and dummy ids — which implies equal values everywhere (the converse
  /// does not hold: J+1 and 1+J encode differently). Used to build
  /// plan-cache signatures for constructed distributions
  /// (exec/comm_plan.hpp) and the structural comparison of alignment
  /// functions (AlignmentFunction::structurally_equal).
  void append_signature(std::string& out) const;

  /// Rendering with the dummy shown as `dummy_name` (default "J").
  std::string to_string() const;
  std::string to_string(const std::string& dummy_name) const;

 private:
  struct Node {
    Op op;
    Index1 value = 0;  // kConst
    int dummy = -1;    // kDummy
    std::shared_ptr<const Node> lhs;
    std::shared_ptr<const Node> rhs;
  };

  explicit AlignExpr(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  static AlignExpr make_binary(Op op, AlignExpr a, AlignExpr b);
  static Index1 eval_node(const Node& n, Index1 j);
  static void signature_node(const Node& n, std::string& out);
  static void find_dummy(const Node& n, std::optional<int>& found);
  static std::optional<Linear> linear_node(const Node& n);
  static std::string render(const Node& n, const std::string& dummy_name);

  std::shared_ptr<const Node> node_;
};

// Operator sugar so alignment functions read like the directives:
//   AlignExpr::dummy(0) * 2 - 1   for   "2*I-1".
AlignExpr operator+(AlignExpr a, AlignExpr b);
AlignExpr operator-(AlignExpr a, AlignExpr b);
AlignExpr operator*(AlignExpr a, AlignExpr b);
AlignExpr operator+(AlignExpr a, Index1 b);
AlignExpr operator-(AlignExpr a, Index1 b);
AlignExpr operator*(AlignExpr a, Index1 b);
AlignExpr operator+(Index1 a, AlignExpr b);
AlignExpr operator-(Index1 a, AlignExpr b);
AlignExpr operator*(Index1 a, AlignExpr b);
AlignExpr operator-(AlignExpr a);

}  // namespace hpfnt
