#include "core/array.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace hpfnt {

Extent elem_bytes(ElemType type) {
  switch (type) {
    case ElemType::kReal:
      return 4;
    case ElemType::kDoublePrecision:
      return 8;
    case ElemType::kInteger:
      return 4;
    case ElemType::kLogical:
      return 4;
  }
  return 4;
}

const char* elem_type_name(ElemType type) {
  switch (type) {
    case ElemType::kReal:
      return "REAL";
    case ElemType::kDoublePrecision:
      return "DOUBLE PRECISION";
    case ElemType::kInteger:
      return "INTEGER";
    case ElemType::kLogical:
      return "LOGICAL";
  }
  return "?";
}

DistArray::DistArray(ArrayId id, std::string name, ElemType type,
                     IndexDomain domain, ArrayAttrs attrs)
    : id_(id),
      name_(std::move(name)),
      type_(type),
      rank_(domain.rank()),
      domain_(std::move(domain)),
      attrs_(attrs),
      created_(true) {
  if (attrs_.allocatable) {
    // Allocatables with a full shape use the deferred constructor.
    created_ = false;
    domain_ = IndexDomain();
  }
}

DistArray::DistArray(ArrayId id, std::string name, ElemType type, int rank,
                     ArrayAttrs attrs)
    : id_(id), name_(std::move(name)), type_(type), rank_(rank), attrs_(attrs) {
  attrs_.allocatable = true;
}

const IndexDomain& DistArray::domain() const {
  if (!created_) {
    throw ConformanceError("array '" + name_ +
                           "' is not created (unallocated allocatable)");
  }
  return domain_;
}

void DistArray::create(IndexDomain domain) {
  if (created_) {
    throw ConformanceError("array '" + name_ + "' is already allocated");
  }
  if (domain.rank() != rank_) {
    throw ConformanceError(cat("ALLOCATE shape rank ", domain.rank(),
                               " differs from declared rank ", rank_, " of '",
                               name_, "'"));
  }
  domain_ = std::move(domain);
  created_ = true;
}

void DistArray::destroy() {
  if (!created_) {
    throw ConformanceError("array '" + name_ + "' is not allocated");
  }
  created_ = false;
  domain_ = IndexDomain();
}

bool DistArray::has_shadow() const noexcept {
  for (const ShadowWidth& w : shadow_) {
    if (w.left != 0 || w.right != 0) return true;
  }
  return false;
}

void DistArray::set_shadow(std::vector<ShadowWidth> widths) {
  if (static_cast<int>(widths.size()) != rank_) {
    throw ConformanceError(cat("SHADOW declares ", widths.size(),
                               " dimension widths for rank-", rank_, " '",
                               name_, "'"));
  }
  for (const ShadowWidth& w : widths) {
    if (w.left < 0 || w.right < 0) {
      throw ConformanceError("SHADOW widths must be nonnegative for '" +
                             name_ + "'");
    }
  }
  shadow_ = std::move(widths);
}

std::string DistArray::to_string() const {
  std::string out = cat(elem_type_name(type_), " ", name_);
  if (created_) {
    out += domain_.to_string();
  } else {
    out += cat("(rank ", rank_, ", unallocated)");
  }
  if (attrs_.allocatable) out += " ALLOCATABLE";
  if (attrs_.dynamic) out += " DYNAMIC";
  if (is_dummy_) out += " DUMMY";
  if (has_shadow()) {
    out += " SHADOW(";
    for (std::size_t d = 0; d < shadow_.size(); ++d) {
      if (d) out += ",";
      out += cat(shadow_[d].left, ":", shadow_[d].right);
    }
    out += ")";
  }
  return out;
}

}  // namespace hpfnt
