// Inquiry functions (paper §8.1.2/§8.2): "inquiry functions must be used to
// determine the properties of alignments and/or distributions passed into
// the subroutine". These mirror the HPF intrinsics the model relies on —
// a callee that inherited a mapping it cannot name syntactically can still
// observe every aspect of it.
#pragma once

#include <string>
#include <vector>

#include "core/data_env.hpp"
#include "core/distribution.hpp"

namespace hpfnt {

/// HPF DISTRIBUTION_KIND-style description of one dimension's mapping.
enum class DimKind {
  kBlock,
  kViennaBlock,
  kGeneralBlock,
  kCyclic,
  kCollapsed,
  kIndirect,
  kUserDefined,
  kDerived,  // not expressible as a per-dimension format (constructed,
             // section view, or materialized mapping)
};

const char* dim_kind_name(DimKind kind);

struct DistributionInfo {
  Distribution::Kind kind = Distribution::Kind::kExplicit;
  int rank = 0;
  bool replicated = false;
  std::vector<DimKind> dim_kinds;          // per array dimension
  std::vector<Extent> cyclic_k;            // parallel; 0 when meaningless
  std::string target;                      // target name, "" when derived
  std::string description;                 // human-readable rendering
};

/// HPF_DISTRIBUTION: everything observable about a mapping.
DistributionInfo inquire_distribution(const Distribution& dist);

struct AlignmentInfo {
  bool is_aligned = false;      // secondary array?
  std::string base_name;        // alignment base ("" for primaries)
  std::string function;         // rendered alignment function
  bool replicated = false;      // does α replicate?
};

/// HPF_ALIGNMENT: the array's position in the alignment forest.
AlignmentInfo inquire_alignment(const DataEnv& env, const DistArray& array);

/// NUMBER_OF_PROCESSORS().
Extent number_of_processors(const ProcessorSpace& space);

/// The owners of one element — the primitive every other inquiry reduces
/// to (δ(i), §2.2).
OwnerSet owners_of(const Distribution& dist, const IndexTuple& index);

}  // namespace hpfnt
