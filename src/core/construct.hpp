// CONSTRUCT (paper Definition 4): derives the distribution of an alignee
// from its alignment function and the base array's distribution:
//
//     δ_A = CONSTRUCT(α, δ_B),  δ_A(i) = ⋃_{j ∈ α(i)} δ_B(j)
//
// guaranteeing that A(i) and B(j) reside in the same processor for every
// j ∈ α(i), under *any* distribution of B. The verification helper makes
// that collocation invariant checkable in tests and assertions.
#pragma once

#include "core/alignment.hpp"
#include "core/distribution.hpp"

namespace hpfnt {

/// δ_A = CONSTRUCT(α, δ_B). Validates that α's base domain matches δ_B's.
Distribution construct(const AlignmentFunction& alpha,
                       const Distribution& base_distribution);

/// Checks the §2.3 collocation guarantee on every alignee index: the owners
/// of B(j) are a subset of the owners of A(i) for each j ∈ α(i). Returns
/// the first violating alignee index, or nullopt when the invariant holds.
std::optional<IndexTuple> find_collocation_violation(
    const AlignmentFunction& alpha, const Distribution& base_distribution,
    const Distribution& derived_distribution);

}  // namespace hpfnt
