#include "core/layout_view.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "core/alignment.hpp"
#include "core/dist_format.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace hpfnt {

namespace {

// "No structural boundary along this dimension": the caller clamps to the
// row remaining. Kept well below the Extent range so span+1 cannot wrap.
constexpr Extent kUnbounded = std::numeric_limits<Extent>::max() / 4;

// Returns how many additional elements beyond idx — stepping idx[dim] by
// `step` each time, all other coordinates fixed — are *guaranteed* to keep
// the owner set unchanged. A sound lower bound: 0 is always safe and is
// what table-backed mappings without structure (kExplicit) report; the run
// builder's probe-and-merge loop restores maximality in that case.
Extent same_owner_span(const Distribution& dist, int dim,
                       const IndexTuple& idx, Index1 step);

// kFormats: only dimension `dim`'s mapping varies, so the span is the rest
// of its constant-owner segment (block, cyclic segment, scanned table run),
// walked at the section's stride.
Extent formats_span(const Distribution& dist, int dim, const IndexTuple& idx,
                    Index1 step) {
  const DimMapping& m = dist.dim_mapping(dim);
  if (m.kind() == FormatKind::kCollapsed) return kUnbounded;
  const Index1 norm =
      idx[static_cast<std::size_t>(dim)] - dist.domain().lower(dim) + 1;
  const auto [seg_lo, seg_hi] = m.segment_range(norm);
  return step > 0 ? (seg_hi - norm) / step : (norm - seg_lo) / (-step);
}

// kConstructed: composition through α (Definition 4). Each base dimension
// driven by alignee dimension `dim` must be linear a*J+b; its contribution
// is constant while the image y stays inside the base segment the recursion
// reports — or, under the §5.1 clamp rule, while y stays beyond the same
// bound. Non-linear (MAX/MIN) subscripts yield no guarantee.
Extent constructed_span(const Distribution& dist, int dim,
                        const IndexTuple& idx, Index1 step) {
  const AlignmentFunction& alpha = dist.alignment();
  const Distribution& base = dist.base();
  const std::vector<AlignmentFunction::BaseDim>& bdims = alpha.base_dims();
  Extent span = kUnbounded;
  bool have_image = false;
  IndexTuple image;
  for (std::size_t bd = 0; bd < bdims.size(); ++bd) {
    const AlignmentFunction::BaseDim& spec = bdims[bd];
    if (spec.kind != AlignmentFunction::BaseDim::Kind::kExpr) continue;
    if (spec.alignee_dim != dim) continue;
    const std::optional<AlignExpr::Linear> lin = spec.expr.linear();
    if (!lin) return 0;
    const Index1 dstep = lin->a * step;
    if (dstep == 0) continue;
    const Index1 y0 = spec.expr.eval(idx[static_cast<std::size_t>(dim)]);
    const Index1 lb = alpha.base_domain().lower(static_cast<int>(bd));
    const Index1 ub = alpha.base_domain().upper(static_cast<int>(bd));
    Extent this_span;
    if (y0 < lb) {
      this_span = dstep > 0 ? (lb - 1 - y0) / dstep : kUnbounded;
    } else if (y0 > ub) {
      this_span = dstep < 0 ? (y0 - ub - 1) / (-dstep) : kUnbounded;
    } else {
      const Extent in_bounds =
          dstep > 0 ? (ub - y0) / dstep : (y0 - lb) / (-dstep);
      if (!have_image) {
        image = alpha.image(idx);
        have_image = true;
      }
      IndexTuple j = image;
      j[bd] = y0;
      this_span = std::min(
          in_bounds, same_owner_span(base, static_cast<int>(bd), j, dstep));
    }
    span = std::min(span, this_span);
    if (span == 0) return 0;
  }
  return span;
}

Extent same_owner_span(const Distribution& dist, int dim,
                       const IndexTuple& idx, Index1 step) {
  switch (dist.kind()) {
    case Distribution::Kind::kFormats:
      return formats_span(dist, dim, idx, step);
    case Distribution::Kind::kConstructed:
      return constructed_span(dist, dim, idx, step);
    case Distribution::Kind::kSectionView: {
      // Restriction: compose the view's triplet into the parent's index
      // space and ask the parent.
      const Distribution& parent = dist.section_parent();
      const std::vector<Triplet>& trips = dist.section_triplets();
      IndexTuple pidx = parent.domain().section_parent_index(trips, idx);
      return same_owner_span(
          parent, dim, pidx,
          trips[static_cast<std::size_t>(dim)].stride() * step);
    }
    case Distribution::Kind::kExplicit:
      return 0;  // run-length scanning via the probe-and-merge loop
  }
  return 0;
}

// kFormats run construction by outer-product composition of the payload's
// per-dimension segment lists (DimMapping::segment_list): no per-element
// probe is ever issued — the probes are the per-dimension segment walks,
// shared across every section of the payload that agrees in a dimension's
// triplet. Rows whose outer dimensions stay inside one segment tuple reuse
// the composed owner sets.
void build_formats_runs(const Distribution& dist,
                        const std::vector<Triplet>& section, RunTable& out,
                        bool use_dim_memo) {
  const int rank = static_cast<int>(section.size());
  const IndexDomain& domain = dist.domain();
  const ProcessorRef& target = dist.target();

  std::vector<std::shared_ptr<const DimSegmentList>> lists;
  lists.reserve(static_cast<std::size_t>(rank));
  for (int d = 0; d < rank; ++d) {
    const Triplet& t = section[static_cast<std::size_t>(d)];
    const Index1 shift = domain.lower(d) - 1;
    const Triplet norm(t.lower() - shift, t.upper() - shift, t.stride());
    const DimMapping& m = dist.dim_mapping(d);
    if (use_dim_memo) {
      Extent charged = 0;
      lists.push_back(m.segment_list(norm, &charged));
      out.ownership_queries += charged;
    } else {
      auto fresh =
          std::make_shared<const DimSegmentList>(m.compute_segment_list(norm));
      out.ownership_queries += fresh->probes;
      lists.push_back(std::move(fresh));
    }
  }

  // Expand each outer dimension's list into per-position segment pointers
  // (cheap pointer fill; all probes were spent above).
  std::vector<std::vector<const DimSegment*>> outer_seg(
      static_cast<std::size_t>(rank - 1));
  for (int d = 1; d < rank; ++d) {
    auto& ptrs = outer_seg[static_cast<std::size_t>(d - 1)];
    ptrs.reserve(
        static_cast<std::size_t>(section[static_cast<std::size_t>(d)].size()));
    for (const DimSegment& s : lists[static_cast<std::size_t>(d)]->segments) {
      for (Extent c = 0; c < s.count; ++c) ptrs.push_back(&s);
    }
  }

  const Triplet& t0 = section[0];
  const Extent len0 = t0.size();
  const Index1 lower0 = domain.lower(0);
  const bool dim0_distributed =
      dist.dim_mapping(0).kind() != FormatKind::kCollapsed;
  const std::vector<DimSegment>& segs0 = lists[0]->segments;

  // Dims contributing a target coordinate, ascending (collapsed dims skip).
  SmallVector<int, kMaxRank> coord_dims;
  for (int d = 0; d < rank; ++d) {
    if (dist.dim_mapping(d).kind() != FormatKind::kCollapsed) {
      coord_dims.push_back(d);
    }
  }

  constexpr std::size_t kNoOpenRun = static_cast<std::size_t>(-1);
  std::vector<OwnerSet> row_owners(segs0.size());
  std::array<const DimOwnerSet*, kMaxRank> dim_sets{};
  SmallVector<const DimSegment*, kMaxRank> cur_outer(
      static_cast<std::size_t>(rank - 1), nullptr);
  bool row_valid = false;

  SmallVector<Extent, kMaxRank> opos(static_cast<std::size_t>(rank - 1), 0);
  IndexTuple idx;
  idx.resize(static_cast<std::size_t>(rank));
  Extent linear = 0;
  while (true) {
    bool changed = !row_valid;
    for (int d = 1; d < rank; ++d) {
      const std::size_t o =
          static_cast<std::size_t>(opos[static_cast<std::size_t>(d - 1)]);
      const DimSegment* s = outer_seg[static_cast<std::size_t>(d - 1)][o];
      if (s != cur_outer[static_cast<std::size_t>(d - 1)]) {
        cur_outer[static_cast<std::size_t>(d - 1)] = s;
        changed = true;
      }
      idx[static_cast<std::size_t>(d)] =
          section[static_cast<std::size_t>(d)].at(
              opos[static_cast<std::size_t>(d - 1)]);
    }
    if (changed) {
      for (std::size_t si = 0; si < segs0.size(); ++si) {
        std::size_t c = 0;
        for (int d : coord_dims) {
          dim_sets[c++] = d == 0
                              ? &segs0[si].owners
                              : &cur_outer[static_cast<std::size_t>(d - 1)]
                                     ->owners;
        }
        row_owners[si] = compose_dim_owners(target, dim_sets, c);
      }
      row_valid = true;
    }
    // Emit this row's runs, merging adjacent equal owner sets exactly as
    // the probe-based walk does (distinct per-dimension positions can
    // compose to one owner set, e.g. under a folded oversize arrangement).
    std::size_t open = kNoOpenRun;
    Extent k = 0;
    for (std::size_t si = 0; si < segs0.size(); ++si) {
      const DimSegment& s = segs0[si];
      const Index1 seg_lo = s.lo + lower0 - 1;
      const Index1 seg_hi = seg_lo + (s.count - 1) * t0.stride();
      if (open != kNoOpenRun && out.runs[open].owners == row_owners[si]) {
        OwnerRun& r = out.runs[open];
        r.count += s.count;
        r.hi = seg_hi;
      } else {
        OwnerRun r;
        r.begin = linear + k;
        r.count = s.count;
        r.lo = seg_lo;
        r.hi = seg_hi;
        r.stride = t0.stride();
        for (int d = 1; d < rank; ++d) {
          r.outer.push_back(idx[static_cast<std::size_t>(d)]);
        }
        if (dim0_distributed) r.local_offset = s.local_offset;
        r.owners = row_owners[si];
        out.runs.push_back(std::move(r));
        open = out.runs.size() - 1;
      }
      k += s.count;
    }
    linear += len0;
    int d = 1;
    for (; d < rank; ++d) {
      Extent& o = opos[static_cast<std::size_t>(d - 1)];
      if (++o < section[static_cast<std::size_t>(d)].size()) break;
      o = 0;
    }
    if (d == rank) break;
  }
}

std::vector<Index1> section_key(const std::vector<Triplet>& section) {
  std::vector<Index1> key;
  key.reserve(section.size() * 3);
  for (const Triplet& t : section) {
    key.push_back(t.lower());
    key.push_back(t.upper());
    key.push_back(t.stride());
  }
  return key;
}

void build_runs(const Distribution& dist, const std::vector<Triplet>& section,
                RunTable& out, bool use_dim_memo) {
  const int rank = static_cast<int>(section.size());
  if (rank == 0) {
    OwnerRun r;
    r.begin = 0;
    r.count = 1;
    r.owners = dist.owners_uncached(IndexTuple{});
    ++out.ownership_queries;
    out.runs.push_back(std::move(r));
    return;
  }
  if (out.section_domain.size() == 0) return;
  if (dist.kind() == Distribution::Kind::kFormats) {
    // Analytic composition of the per-dimension segment lists — no
    // per-element probes, and lists are shared across sections.
    build_formats_runs(dist, section, out, use_dim_memo);
    return;
  }

  const Triplet& t0 = section[0];
  const Extent len0 = t0.size();
  constexpr std::size_t kNoOpenRun = static_cast<std::size_t>(-1);

  // Odometer over the outer dimensions' section positions, Fortran order
  // (dimension 1 varies fastest among them; dimension 0 is the run axis).
  SmallVector<Extent, kMaxRank> opos(
      static_cast<std::size_t>(rank - 1), 0);
  IndexTuple idx;
  idx.resize(static_cast<std::size_t>(rank));
  Extent linear = 0;
  while (true) {
    for (int d = 1; d < rank; ++d) {
      idx[static_cast<std::size_t>(d)] =
          section[static_cast<std::size_t>(d)].at(
              opos[static_cast<std::size_t>(d - 1)]);
    }
    // Walk one row: probe at each structural boundary, merge when the probe
    // repeats the open run's owner set (restores maximality where the
    // structural span is conservative, e.g. CYCLIC on one processor).
    std::size_t open = kNoOpenRun;
    Extent k = 0;
    while (k < len0) {
      idx[0] = t0.at(k);
      OwnerSet own = dist.owners_uncached(idx);
      ++out.ownership_queries;
      Extent span = same_owner_span(dist, 0, idx, t0.stride());
      span = std::min(span, len0 - 1 - k);
      if (open != kNoOpenRun && out.runs[open].owners == own) {
        OwnerRun& r = out.runs[open];
        r.count += span + 1;
        r.hi = t0.at(k + span);
      } else {
        OwnerRun r;
        r.begin = linear + k;
        r.count = span + 1;
        r.lo = idx[0];
        r.hi = t0.at(k + span);
        r.stride = t0.stride();
        for (int d = 1; d < rank; ++d) {
          r.outer.push_back(idx[static_cast<std::size_t>(d)]);
        }
        r.owners = std::move(own);
        out.runs.push_back(std::move(r));
        open = out.runs.size() - 1;
      }
      k += span + 1;
    }
    linear += len0;
    int d = 1;
    for (; d < rank; ++d) {
      Extent& o = opos[static_cast<std::size_t>(d - 1)];
      if (++o < section[static_cast<std::size_t>(d)].size()) break;
      o = 0;
    }
    if (d == rank) break;
  }
}

}  // namespace

const OwnerSet& owner_set_at(const RunTable& table, Extent linear_pos) {
  auto it = std::upper_bound(
      table.runs.begin(), table.runs.end(), linear_pos,
      [](Extent pos, const OwnerRun& r) { return pos < r.begin; });
  if (it == table.runs.begin()) {
    throw MappingError(cat("position ", linear_pos, " before any run"));
  }
  --it;
  if (linear_pos >= it->begin + it->count) {
    throw MappingError(cat("position ", linear_pos, " beyond the run table"));
  }
  return it->owners;
}

LayoutView::LayoutView(Distribution dist, std::vector<Triplet> section)
    : dist_(std::move(dist)), section_(std::move(section)) {
  dist_.domain().validate_section(section_);
  RunMemo& memo = dist_.run_memo();
  const std::vector<Index1> key = section_key(section_);
  if (std::shared_ptr<const void> hit = memo.lookup(key)) {
    table_ = std::static_pointer_cast<const RunTable>(hit);
    return;
  }
  // The memoized path also shares the payload's per-dimension segment
  // lists across sections (DimMapping::segment_list). The section was
  // validated above.
  RunTable computed;
  computed.section_domain = dist_.domain().section_domain(section_);
  build_runs(dist_, section_, computed, /*use_dim_memo=*/true);
  auto table = std::make_shared<RunTable>(std::move(computed));
  // Arming the owners() shim with a whole-domain table only pays off when
  // the payload's own per-element query is dearer than a binary search —
  // kExplicit already answers in O(1) from its owner table, and its run
  // table can dwarf it (one run per owner change), so leave it unarmed.
  const bool whole = section_ == dist_.domain().dims() &&
                     dist_.kind() != Distribution::Kind::kExplicit;
  memo.insert(key, table, whole);
  table_ = std::move(table);
}

LayoutView LayoutView::whole(const Distribution& dist) {
  return LayoutView(dist, dist.domain().dims());
}

RunTable LayoutView::compute(const Distribution& dist,
                             const std::vector<Triplet>& section) {
  dist.domain().validate_section(section);
  RunTable out;
  out.section_domain = dist.domain().section_domain(section);
  build_runs(dist, section, out, /*use_dim_memo=*/false);
  return out;
}

IndexTuple LayoutView::parent_index(const OwnerRun& run, Extent offset) const {
  IndexTuple idx;
  if (section_.empty()) return idx;  // rank-0: the single empty tuple
  idx.push_back(run.lo + offset * run.stride);
  for (Index1 v : run.outer) idx.push_back(v);
  return idx;
}

void for_each_common_segment(
    const RunTable& a, const RunTable& b,
    const std::function<void(Extent, Extent, const OwnerSet&,
                             const OwnerSet&)>& fn) {
  for_each_common_segment<decltype(fn)>(a, b, fn);
}

}  // namespace hpfnt
