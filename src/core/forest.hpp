// The alignment forest (paper §2.4) and its dynamic transitions.
//
// The data space 𝒜 of created, accessible arrays is represented as a forest
// of alignment trees of height <= 1:
//   * a PRIMARY array is a tree root; it is the only kind of array with a
//     directly specified (or implicit) distribution;
//   * a SECONDARY array is aligned to exactly one primary via an alignment
//     function α, and its distribution is always δ_A = CONSTRUCT(α, δ_B).
// The §2.4 constraints — an alignment base is never itself aligned, and an
// alignee has exactly one base — are enforced on every mutation, as are the
// transition rules of REDISTRIBUTE (§4.2), REALIGN (§5.2) and removal
// (DEALLOCATE, §6).
//
// The forest stores α on edges and a Distribution only on primaries, so a
// redistribution of a base is O(1) and every secondary's mapping follows
// automatically — precisely the invariant the paper requires ("the
// relationship expressed by the alignment function ... is kept invariant").
//
// A secondary's derived distribution CONSTRUCT(α, δ_B) is *cached* on the
// node: repeated distribution_of calls return the same shared payload, so
// the payload's memoized run tables (Distribution::run_memo) and any
// address-keyed communication plans priced against it stay warm across
// queries. Every mutation that can change a mapping — set_distribution,
// redistribute, realign, detachment, orphaning, removal — invalidates the
// affected nodes' cached payloads (for a primary, its whole subtree's), so
// a stale derived mapping can never be observed.
//
// Concurrency: the lazy fill inside distribution_of is guarded by a
// per-forest mutex, so any number of threads may query a const forest
// concurrently (the memo-publication rule every write-once cache in this
// codebase follows). Mutating calls still require exclusive access, like
// every other container.
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/alignment.hpp"
#include "core/distribution.hpp"
#include "core/types.hpp"

namespace hpfnt {

class AlignmentForest {
 public:
  /// Registers `id` as a degenerate tree (primary, no children) with the
  /// given distribution.
  void add_primary(ArrayId id, Distribution dist);

  /// Registers `id` as a secondary of `base`. `base` must be a primary
  /// already in the forest (§2.4 constraint 1); `id` must not be present.
  void add_secondary(ArrayId id, ArrayId base, AlignmentFunction alpha);

  /// Specification-part ALIGN of an array already in the forest: converts a
  /// primary *without children* into a secondary of `base`. Aligning an
  /// array that other arrays are aligned to would build a tree of height 2
  /// (§2.4 limits heights to 1), so that is a conformance error — unlike
  /// the executable REALIGN, which first orphans the children (§5.2).
  void make_secondary(ArrayId id, ArrayId base, AlignmentFunction alpha);

  bool contains(ArrayId id) const noexcept;
  bool is_primary(ArrayId id) const;

  /// kNoArray for primaries.
  ArrayId parent_of(ArrayId id) const;

  const std::vector<ArrayId>& children_of(ArrayId id) const;

  /// The alignment function linking a secondary to its base.
  const AlignmentFunction& alignment_of(ArrayId id) const;

  /// δ of `id`: the stored distribution for primaries; CONSTRUCT(α, δ_base)
  /// for secondaries, built against the base's *current* distribution and
  /// cached on the node — repeated calls return a handle to one shared
  /// payload until a mutation of the node (or its base) invalidates it.
  /// The reference is valid until the next mutating call on this forest;
  /// copying the returned Distribution is cheap and shares the payload.
  const Distribution& distribution_of(ArrayId id) const;

  /// Replaces a primary's distribution directly (static DISTRIBUTE during
  /// specification processing). Throws for secondaries: an alignee's
  /// distribution is never specified directly.
  void set_distribution(ArrayId id, Distribution dist);

  /// REDISTRIBUTE semantics (§4.2). If `id` is secondary it is disconnected
  /// from its base and becomes the primary of a new degenerate tree with
  /// the new distribution; if primary, the distribution is replaced and all
  /// secondaries follow via their alignment functions.
  void redistribute(ArrayId id, Distribution dist);

  /// REALIGN semantics (§5.2):
  ///  1. if `id` is a primary with secondaries, they are disconnected and
  ///     become primaries of degenerate trees with their current
  ///     distributions; if `id` is secondary it is disconnected;
  ///  2. `id` becomes a secondary of `base`;
  ///  3. δ_id = CONSTRUCT(α, δ_base) from then on.
  /// `base` must be a primary and distinct from `id` (after step 1, which
  /// may itself have turned `base` into a primary).
  void realign(ArrayId id, ArrayId base, AlignmentFunction alpha);

  /// Removes `id` (DEALLOCATE §6, or scope exit): every secondary aligned
  /// to it becomes the primary of a new tree with its current distribution.
  void remove(ArrayId id);

  /// Number of arrays in the forest.
  std::size_t size() const noexcept { return nodes_.size(); }

  /// All ids, unordered.
  std::vector<ArrayId> ids() const;

  /// Verifies every §2.4 invariant (height <= 1, consistent parent/child
  /// links, primaries have distributions). Throws InternalError on failure;
  /// intended for tests and debug assertions.
  void check_invariants() const;

 private:
  struct Node {
    bool secondary = false;
    ArrayId parent = kNoArray;
    AlignmentFunction alpha = AlignmentFunction(
        IndexDomain(), IndexDomain(), {});  // valid only when secondary
    Distribution dist;                      // valid only when primary
    // Memo of CONSTRUCT(alpha, parent's dist), filled lazily by
    // distribution_of; invalid when the node is primary or the cache has
    // been invalidated by a mutation. Mutable: caching is not an observable
    // state change.
    mutable Distribution derived;
    std::vector<ArrayId> children;
  };

  Node& node(ArrayId id);
  const Node& node(ArrayId id) const;
  void detach_from_parent(ArrayId id);
  void orphan_children(ArrayId id);

  // Guards the lazy derived-payload fill in distribution_of, so concurrent
  // const readers publish the memo safely. Held behind a shared_ptr to keep
  // the forest copyable/movable; copies sharing one mutex is harmless (the
  // lock only serializes a cheap cache fill).
  mutable std::shared_ptr<std::mutex> derive_mu_ =
      std::make_shared<std::mutex>();

  /// Drops the cached derived payloads of `n` and (when primary) of every
  /// child, so the next distribution_of re-derives against current state.
  void invalidate_subtree(Node& n);

  std::unordered_map<ArrayId, Node> nodes_;
};

}  // namespace hpfnt
