// The data environment: one program unit's data space 𝒜 (paper §2.4) —
// declarations, mapping directives, the allocatable lifecycle (§6), and
// procedure boundaries (§7).
//
// A DataEnv owns array descriptors and the alignment forest for one scope.
// Directives are applied in program order:
//   * declarations enter non-allocatable arrays into the forest immediately
//     (with the compiler's implicit distribution until a directive says
//     otherwise); allocatable arrays stay outside until ALLOCATE;
//   * DISTRIBUTE / ALIGN in the specification part replace the implicit
//     mapping (deferred for allocatables and re-applied per instance, §6);
//   * REDISTRIBUTE / REALIGN require the DYNAMIC attribute and follow the
//     forest transition rules (§4.2, §5.2);
//   * DEALLOCATE removes the array; arrays aligned to it become primaries
//     of new degenerate trees with their current distributions (§6).
//
// Procedure calls (§7) build a fresh DataEnv for the callee: "the alignment
// tree is local to a procedure", so an actual argument is never connected
// to its caller-side tree during the call. A dummy's mapping comes from one
// of the four modes — explicit, inherited (*), inheritance-matching (* d),
// or implicit — and the original distribution is restored on exit. The
// returned events describe the data movement each mode implies; the exec
// layer prices and performs them.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/array.hpp"
#include "core/forest.hpp"
#include "core/processors.hpp"

namespace hpfnt {

/// How a dummy argument receives its distribution (§7).
struct DummyMapping {
  enum class Mode {
    kExplicit,      // DISTRIBUTE A d [TO r]   — remap to d, restore on exit
    kInherit,       // DISTRIBUTE A *          — take the actual's mapping
    kInheritMatch,  // DISTRIBUTE A * d [TO r] — inherit, must match d
    kImplicit,      // no directive            — compiler's implicit mapping
  };
  Mode mode = Mode::kImplicit;
  std::vector<DistFormat> formats;  // kExplicit / kInheritMatch
  ProcessorRef target;              // optional; invalid() -> default target

  static DummyMapping inherit() {
    DummyMapping m;
    m.mode = Mode::kInherit;
    return m;
  }
  static DummyMapping explicit_dist(std::vector<DistFormat> formats,
                                    ProcessorRef target = {}) {
    DummyMapping m;
    m.mode = Mode::kExplicit;
    m.formats = std::move(formats);
    m.target = std::move(target);
    return m;
  }
  static DummyMapping inherit_match(std::vector<DistFormat> formats,
                                    ProcessorRef target = {}) {
    DummyMapping m;
    m.mode = Mode::kInheritMatch;
    m.formats = std::move(formats);
    m.target = std::move(target);
    return m;
  }
  static DummyMapping implicit() { return {}; }
};

/// One dummy argument of a procedure signature. Dummies are assumed-shape:
/// the index domain comes from the actual argument at each call.
struct DummySpec {
  std::string name;
  ElemType type = ElemType::kReal;
  DummyMapping mapping;
  bool dynamic = false;  // may the callee REDISTRIBUTE/REALIGN it?
};

struct ProcedureSig {
  std::string name;
  std::vector<DummySpec> dummies;
};

/// An actual argument: a whole array or a regular section of one (§8.1.2).
struct ActualArg {
  ArrayId array = kNoArray;
  std::vector<Triplet> section;  // empty = whole array

  static ActualArg whole(ArrayId id) { return {id, {}}; }
  static ActualArg of_section(ArrayId id, std::vector<Triplet> s) {
    return {id, std::move(s)};
  }
};

/// A mapping change implying data movement, produced at procedure
/// boundaries. `from` and `to` share the dummy's index domain; the exec
/// layer counts the elements whose owner sets differ.
struct RemapEvent {
  ArrayId dummy = kNoArray;   // callee-scope array whose mapping changes
  Distribution from;
  Distribution to;
  std::string reason;
};

class DataEnv;

/// The callee scope plus the argument bindings of one active call.
struct BoundArg {
  ArrayId dummy = kNoArray;          // id in the callee environment
  ArrayId actual = kNoArray;         // id in the caller environment
  std::vector<Triplet> section;      // section of the actual (may be empty)
  Distribution inherited;            // mapping of the actual('s section) at entry
  Distribution entry;                // dummy mapping after call-site remap
};

struct CallFrame {
  std::string procedure;
  std::unique_ptr<DataEnv> callee;
  std::vector<BoundArg> args;
  std::vector<RemapEvent> call_events;  // movement implied at the call
};

class DataEnv {
 public:
  explicit DataEnv(ProcessorSpace& space);

  ProcessorSpace& space() noexcept { return *space_; }
  const ProcessorSpace& space() const noexcept { return *space_; }

  // --- declarations (specification part) ---------------------------------

  /// REAL name(domain).
  DistArray& real(const std::string& name, const IndexDomain& domain);

  /// INTEGER name(domain).
  DistArray& integer(const std::string& name, const IndexDomain& domain);

  DistArray& declare(const std::string& name, ElemType type,
                     const IndexDomain& domain, ArrayAttrs attrs = {});

  /// REAL, ALLOCATABLE :: name(:,:,...) with the given rank.
  DistArray& declare_allocatable(const std::string& name, ElemType type,
                                 int rank, ArrayAttrs attrs = {});

  /// A scalar: rank-0 array with a one-element index domain (§2.2).
  DistArray& scalar(const std::string& name, ElemType type = ElemType::kReal);

  /// The DYNAMIC directive.
  void dynamic(DistArray& array);

  // --- lookup -------------------------------------------------------------

  bool has(const std::string& name) const noexcept;
  DistArray& find(const std::string& name);
  const DistArray& find(const std::string& name) const;
  DistArray& array(ArrayId id);
  const DistArray& array(ArrayId id) const;

  /// Names of all declared arrays, in declaration order.
  std::vector<std::string> array_names() const;

  // --- mapping directives --------------------------------------------------

  /// DISTRIBUTE array(formats) [TO target]. An invalid target selects the
  /// compiler's default arrangement of matching rank. For allocatables the
  /// specification is deferred and applied to every instance (§6).
  void distribute(DistArray& array, std::vector<DistFormat> formats,
                  ProcessorRef target = {});

  /// ALIGN alignee(...) WITH base(...). Deferred for allocatable alignees.
  /// A non-allocatable array cannot be aligned to an allocatable one in the
  /// specification part (§6).
  void align(DistArray& alignee, DistArray& base, const AlignSpec& spec);

  /// REDISTRIBUTE (§4.2); requires the DYNAMIC attribute and a created
  /// array. Returns one movement event for the array itself plus one per
  /// secondary aligned to it — §4.2 redistributes every alignee "in such a
  /// way that the relationship expressed by the alignment function ... is
  /// kept invariant", which moves their data too.
  std::vector<RemapEvent> redistribute(DistArray& array,
                                       std::vector<DistFormat> formats,
                                       ProcessorRef target = {});

  /// The recovery path's remap (src/fault/recovery.cpp): identical to
  /// redistribute but without the DYNAMIC requirement — losing a processor
  /// forces EVERY affected array onto the survivors, DYNAMIC or not,
  /// exactly as a compiler's runtime would. Events carry a "RECOVER"
  /// reason. Still requires a created array.
  std::vector<RemapEvent> system_redistribute(DistArray& array,
                                              std::vector<DistFormat> formats,
                                              ProcessorRef target = {});

  /// REALIGN (§5.2); requires a DYNAMIC, created alignee.
  RemapEvent realign(DistArray& alignee, DistArray& base,
                     const AlignSpec& spec);

  // --- allocatable lifecycle (§6) ------------------------------------------

  void allocate(DistArray& array, const IndexDomain& domain);
  void deallocate(DistArray& array);

  // --- queries ---------------------------------------------------------------

  /// The array's current distribution δ; derives CONSTRUCT(α, δ_base) for
  /// secondaries, cached in the alignment forest so repeated queries share
  /// one payload (and its memoized run tables / plan signatures). The
  /// reference is valid until the next mapping directive; copying the
  /// Distribution is cheap and keeps the payload shared.
  const Distribution& distribution_of(const DistArray& array) const;
  const Distribution& distribution_of(const std::string& name) const;

  bool is_primary(const DistArray& array) const;

  /// The base the array is aligned to, or nullptr for primaries.
  const DistArray* aligned_to(const DistArray& array) const;

  const AlignmentForest& forest() const noexcept { return forest_; }

  /// The compiler's implicit distribution: BLOCK on the first dimension
  /// over the default one-dimensional arrangement (scalars go to the
  /// control processor's scalar arrangement).
  Distribution implicit_distribution(const IndexDomain& domain) const;

  /// The compiler's default target of a given rank: the whole machine
  /// factorized into a near-square grid.
  ProcessorRef default_target(int rank) const;

  // --- procedures (§7) -------------------------------------------------------

  /// Calls `sig` with the given actuals. Builds the callee environment,
  /// binds each dummy per its mapping mode, and records the implied
  /// movement. `interface_visible` models the caller knowing the callee's
  /// interface (interface blocks): with it, an inheritance-matching
  /// mismatch is remapped; without it, the mismatch is a conformance error
  /// (§7, mode 3).
  CallFrame call(const ProcedureSig& sig, const std::vector<ActualArg>& actuals,
                 bool interface_visible = true);

  /// Ends the call: computes the events that restore every dummy's original
  /// mapping ("the original distribution must be restored on procedure
  /// exit"). The frame's callee environment stays readable afterwards.
  std::vector<RemapEvent> return_from(CallFrame& frame);

 private:
  struct Deferred {
    enum class Kind { kNone, kDistribute, kAlign };
    Kind kind = Kind::kNone;
    std::vector<DistFormat> formats;
    ProcessorRef target;
    ArrayId base = kNoArray;
    std::optional<AlignSpec> spec;
  };

  DistArray& register_array(std::unique_ptr<DistArray> array);
  Distribution build_format_distribution(const IndexDomain& domain,
                                         std::vector<DistFormat> formats,
                                         ProcessorRef target) const;
  std::vector<RemapEvent> redistribute_impl(DistArray& array,
                                            std::vector<DistFormat> formats,
                                            ProcessorRef target,
                                            const std::string& verb);
  void apply_deferred(DistArray& array);
  Deferred& deferred_of(ArrayId id);

  ProcessorSpace* space_;
  std::vector<std::unique_ptr<DistArray>> arrays_;
  AlignmentForest forest_;
  std::vector<Deferred> deferred_;  // parallel to arrays_ (by local position)
  std::vector<ArrayId> order_;      // declaration order (ids)
};

}  // namespace hpfnt
