#include "core/align_expr.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace hpfnt {

AlignExpr AlignExpr::constant(Index1 c) {
  auto n = std::make_shared<Node>();
  n->op = Op::kConst;
  n->value = c;
  return AlignExpr(std::move(n));
}

AlignExpr AlignExpr::dummy(int dummy_id) {
  auto n = std::make_shared<Node>();
  n->op = Op::kDummy;
  n->dummy = dummy_id;
  return AlignExpr(std::move(n));
}

AlignExpr AlignExpr::make_binary(Op op, AlignExpr a, AlignExpr b) {
  auto n = std::make_shared<Node>();
  n->op = op;
  n->lhs = a.node_;
  n->rhs = b.node_;
  return AlignExpr(std::move(n));
}

AlignExpr AlignExpr::add(AlignExpr a, AlignExpr b) {
  return make_binary(Op::kAdd, std::move(a), std::move(b));
}
AlignExpr AlignExpr::sub(AlignExpr a, AlignExpr b) {
  return make_binary(Op::kSub, std::move(a), std::move(b));
}
AlignExpr AlignExpr::mul(AlignExpr a, AlignExpr b) {
  return make_binary(Op::kMul, std::move(a), std::move(b));
}
AlignExpr AlignExpr::max(AlignExpr a, AlignExpr b) {
  return make_binary(Op::kMax, std::move(a), std::move(b));
}
AlignExpr AlignExpr::min(AlignExpr a, AlignExpr b) {
  return make_binary(Op::kMin, std::move(a), std::move(b));
}

AlignExpr AlignExpr::neg(AlignExpr a) {
  auto n = std::make_shared<Node>();
  n->op = Op::kNeg;
  n->lhs = a.node_;
  return AlignExpr(std::move(n));
}

Index1 AlignExpr::eval_node(const Node& n, Index1 j) {
  switch (n.op) {
    case Op::kConst:
      return n.value;
    case Op::kDummy:
      return j;
    case Op::kAdd:
      return eval_node(*n.lhs, j) + eval_node(*n.rhs, j);
    case Op::kSub:
      return eval_node(*n.lhs, j) - eval_node(*n.rhs, j);
    case Op::kMul:
      return eval_node(*n.lhs, j) * eval_node(*n.rhs, j);
    case Op::kNeg:
      return -eval_node(*n.lhs, j);
    case Op::kMax:
      return std::max(eval_node(*n.lhs, j), eval_node(*n.rhs, j));
    case Op::kMin:
      return std::min(eval_node(*n.lhs, j), eval_node(*n.rhs, j));
  }
  throw InternalError("unreachable align-expr op");
}

Index1 AlignExpr::eval(Index1 dummy_value) const {
  return eval_node(*node_, dummy_value);
}

void AlignExpr::find_dummy(const Node& n, std::optional<int>& found) {
  switch (n.op) {
    case Op::kConst:
      return;
    case Op::kDummy:
      if (found.has_value() && *found != n.dummy) {
        throw ConformanceError(
            "skew alignment: an alignment expression uses two different "
            "align-dummies (§5.1 excludes this)");
      }
      found = n.dummy;
      return;
    default:
      if (n.lhs) find_dummy(*n.lhs, found);
      if (n.rhs) find_dummy(*n.rhs, found);
  }
}

std::optional<int> AlignExpr::used_dummy() const {
  std::optional<int> found;
  find_dummy(*node_, found);
  return found;
}

std::optional<AlignExpr::Linear> AlignExpr::linear_node(const Node& n) {
  switch (n.op) {
    case Op::kConst:
      return Linear{0, n.value};
    case Op::kDummy:
      return Linear{1, 0};
    case Op::kAdd: {
      auto l = linear_node(*n.lhs);
      auto r = linear_node(*n.rhs);
      if (!l || !r) return std::nullopt;
      return Linear{l->a + r->a, l->b + r->b};
    }
    case Op::kSub: {
      auto l = linear_node(*n.lhs);
      auto r = linear_node(*n.rhs);
      if (!l || !r) return std::nullopt;
      return Linear{l->a - r->a, l->b - r->b};
    }
    case Op::kMul: {
      auto l = linear_node(*n.lhs);
      auto r = linear_node(*n.rhs);
      if (!l || !r) return std::nullopt;
      if (l->a != 0 && r->a != 0) return std::nullopt;  // J*J is not linear
      return Linear{l->a * r->b + r->a * l->b, l->b * r->b};
    }
    case Op::kNeg: {
      auto l = linear_node(*n.lhs);
      if (!l) return std::nullopt;
      return Linear{-l->a, -l->b};
    }
    case Op::kMax:
    case Op::kMin:
      return std::nullopt;
  }
  return std::nullopt;
}

std::optional<AlignExpr::Linear> AlignExpr::linear() const {
  return linear_node(*node_);
}

bool AlignExpr::is_injective() const {
  auto lin = linear();
  return lin.has_value() && lin->a != 0;
}

void AlignExpr::signature_node(const Node& n, std::string& out) {
  out += static_cast<char>('0' + static_cast<int>(n.op));
  switch (n.op) {
    case Op::kConst:
      append_raw(out, n.value);
      return;
    case Op::kDummy:
      append_raw(out, static_cast<Index1>(n.dummy));
      return;
    case Op::kNeg:
      signature_node(*n.lhs, out);
      return;
    default:
      signature_node(*n.lhs, out);
      signature_node(*n.rhs, out);
  }
}

void AlignExpr::append_signature(std::string& out) const {
  signature_node(*node_, out);
}

std::string AlignExpr::render(const Node& n, const std::string& dummy_name) {
  switch (n.op) {
    case Op::kConst:
      return std::to_string(n.value);
    case Op::kDummy:
      return dummy_name;
    case Op::kAdd:
      return "(" + render(*n.lhs, dummy_name) + "+" +
             render(*n.rhs, dummy_name) + ")";
    case Op::kSub:
      return "(" + render(*n.lhs, dummy_name) + "-" +
             render(*n.rhs, dummy_name) + ")";
    case Op::kMul:
      return render(*n.lhs, dummy_name) + "*" + render(*n.rhs, dummy_name);
    case Op::kNeg:
      return "-" + render(*n.lhs, dummy_name);
    case Op::kMax:
      return "MAX(" + render(*n.lhs, dummy_name) + "," +
             render(*n.rhs, dummy_name) + ")";
    case Op::kMin:
      return "MIN(" + render(*n.lhs, dummy_name) + "," +
             render(*n.rhs, dummy_name) + ")";
  }
  return "?";
}

std::string AlignExpr::to_string() const { return to_string("J"); }

std::string AlignExpr::to_string(const std::string& dummy_name) const {
  return render(*node_, dummy_name);
}

AlignExpr operator+(AlignExpr a, AlignExpr b) {
  return AlignExpr::add(std::move(a), std::move(b));
}
AlignExpr operator-(AlignExpr a, AlignExpr b) {
  return AlignExpr::sub(std::move(a), std::move(b));
}
AlignExpr operator*(AlignExpr a, AlignExpr b) {
  return AlignExpr::mul(std::move(a), std::move(b));
}
AlignExpr operator+(AlignExpr a, Index1 b) {
  return AlignExpr::add(std::move(a), AlignExpr::constant(b));
}
AlignExpr operator-(AlignExpr a, Index1 b) {
  return AlignExpr::sub(std::move(a), AlignExpr::constant(b));
}
AlignExpr operator*(AlignExpr a, Index1 b) {
  return AlignExpr::mul(std::move(a), AlignExpr::constant(b));
}
AlignExpr operator+(Index1 a, AlignExpr b) {
  return AlignExpr::add(AlignExpr::constant(a), std::move(b));
}
AlignExpr operator-(Index1 a, AlignExpr b) {
  return AlignExpr::sub(AlignExpr::constant(a), std::move(b));
}
AlignExpr operator*(Index1 a, AlignExpr b) {
  return AlignExpr::mul(AlignExpr::constant(a), std::move(b));
}
AlignExpr operator-(AlignExpr a) { return AlignExpr::neg(std::move(a)); }

}  // namespace hpfnt
