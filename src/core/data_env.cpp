#include "core/data_env.hpp"

#include <algorithm>
#include <atomic>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace hpfnt {

namespace {

std::atomic<ArrayId> g_next_array_id{0};

ArrayId next_id() { return g_next_array_id.fetch_add(1); }

/// Near-square factorization of `p` into `rank` factors (largest first),
/// by multiplying prime factors onto the currently smallest dimension.
std::vector<Extent> factorize(Extent p, int rank) {
  std::vector<Extent> dims(static_cast<std::size_t>(rank), 1);
  std::vector<Extent> primes;
  Extent rest = p;
  for (Extent f = 2; f * f <= rest; ++f) {
    while (rest % f == 0) {
      primes.push_back(f);
      rest /= f;
    }
  }
  if (rest > 1) primes.push_back(rest);
  std::sort(primes.rbegin(), primes.rend());
  for (Extent f : primes) {
    auto smallest = std::min_element(dims.begin(), dims.end());
    *smallest *= f;
  }
  std::sort(dims.rbegin(), dims.rend());
  return dims;
}

}  // namespace

DataEnv::DataEnv(ProcessorSpace& space) : space_(&space) {}

DistArray& DataEnv::register_array(std::unique_ptr<DistArray> array) {
  if (has(array->name())) {
    throw ConformanceError("array '" + array->name() + "' declared twice");
  }
  arrays_.push_back(std::move(array));
  deferred_.emplace_back();
  order_.push_back(arrays_.back()->id());
  return *arrays_.back();
}

DistArray& DataEnv::real(const std::string& name, const IndexDomain& domain) {
  return declare(name, ElemType::kReal, domain);
}

DistArray& DataEnv::integer(const std::string& name,
                            const IndexDomain& domain) {
  return declare(name, ElemType::kInteger, domain);
}

DistArray& DataEnv::declare(const std::string& name, ElemType type,
                            const IndexDomain& domain, ArrayAttrs attrs) {
  if (attrs.allocatable) {
    return declare_allocatable(name, type, domain.rank(), attrs);
  }
  DistArray& a = register_array(
      std::make_unique<DistArray>(next_id(), name, type, domain, attrs));
  forest_.add_primary(a.id(), implicit_distribution(domain));
  return a;
}

DistArray& DataEnv::declare_allocatable(const std::string& name, ElemType type,
                                        int rank, ArrayAttrs attrs) {
  attrs.allocatable = true;
  return register_array(
      std::make_unique<DistArray>(next_id(), name, type, rank, attrs));
}

DistArray& DataEnv::scalar(const std::string& name, ElemType type) {
  return declare(name, type, IndexDomain());
}

void DataEnv::dynamic(DistArray& array) { array.mark_dynamic(); }

bool DataEnv::has(const std::string& name) const noexcept {
  for (const auto& a : arrays_) {
    if (iequals(a->name(), name)) return true;
  }
  return false;
}

DistArray& DataEnv::find(const std::string& name) {
  for (auto& a : arrays_) {
    if (iequals(a->name(), name)) return *a;
  }
  throw ConformanceError("unknown array '" + name + "'");
}

const DistArray& DataEnv::find(const std::string& name) const {
  for (const auto& a : arrays_) {
    if (iequals(a->name(), name)) return *a;
  }
  throw ConformanceError("unknown array '" + name + "'");
}

DistArray& DataEnv::array(ArrayId id) {
  for (auto& a : arrays_) {
    if (a->id() == id) return *a;
  }
  throw InternalError("array id not in this environment");
}

const DistArray& DataEnv::array(ArrayId id) const {
  for (const auto& a : arrays_) {
    if (a->id() == id) return *a;
  }
  throw InternalError("array id not in this environment");
}

std::vector<std::string> DataEnv::array_names() const {
  std::vector<std::string> names;
  names.reserve(arrays_.size());
  for (const auto& a : arrays_) names.push_back(a->name());
  return names;
}

DataEnv::Deferred& DataEnv::deferred_of(ArrayId id) {
  for (std::size_t i = 0; i < arrays_.size(); ++i) {
    if (arrays_[i]->id() == id) return deferred_[i];
  }
  throw InternalError("array id not in this environment");
}

Distribution DataEnv::build_format_distribution(const IndexDomain& domain,
                                                std::vector<DistFormat> formats,
                                                ProcessorRef target) const {
  if (!target.valid()) {
    int distributed = 0;
    for (const DistFormat& f : formats) {
      if (!f.is_collapsed()) ++distributed;
    }
    target = const_cast<DataEnv*>(this)->default_target(distributed);
  }
  return Distribution::formats(domain, std::move(formats), std::move(target));
}

void DataEnv::distribute(DistArray& array, std::vector<DistFormat> formats,
                         ProcessorRef target) {
  Deferred& d = deferred_of(array.id());
  if (d.kind != Deferred::Kind::kNone) {
    throw ConformanceError("array '" + array.name() +
                           "' already has a mapping directive");
  }
  if (array.is_allocatable()) {
    // §6: the attributes are propagated to each ALLOCATE instance.
    d.kind = Deferred::Kind::kDistribute;
    d.formats = std::move(formats);
    d.target = std::move(target);
    if (array.is_created()) {
      forest_.set_distribution(
          array.id(),
          build_format_distribution(array.domain(), d.formats, d.target));
    }
    return;
  }
  d.kind = Deferred::Kind::kDistribute;
  forest_.set_distribution(
      array.id(),
      build_format_distribution(array.domain(), std::move(formats),
                                std::move(target)));
}

void DataEnv::align(DistArray& alignee, DistArray& base,
                    const AlignSpec& spec) {
  Deferred& d = deferred_of(alignee.id());
  if (d.kind != Deferred::Kind::kNone) {
    throw ConformanceError("array '" + alignee.name() +
                           "' already has a mapping directive");
  }
  if (&alignee == &base) {
    throw ConformanceError("an array cannot be aligned to itself");
  }
  if (!alignee.is_allocatable() && base.is_allocatable()) {
    throw ConformanceError(
        "a local array which is not ALLOCATABLE cannot be aligned in the "
        "specification part to an allocatable array (§6)");
  }
  if (alignee.is_allocatable()) {
    d.kind = Deferred::Kind::kAlign;
    d.base = base.id();
    d.spec = spec;
    return;
  }
  AlignmentFunction alpha = spec.reduce(alignee.domain(), base.domain());
  d.kind = Deferred::Kind::kAlign;
  d.base = base.id();
  d.spec = spec;
  forest_.make_secondary(alignee.id(), base.id(), std::move(alpha));
}

std::vector<RemapEvent> DataEnv::redistribute_impl(
    DistArray& array, std::vector<DistFormat> formats, ProcessorRef target,
    const std::string& verb) {
  if (!array.is_created()) {
    throw ConformanceError(verb + " of the unallocated array '" +
                           array.name() + "'");
  }
  // Snapshot the mappings that are about to change: the array itself and,
  // when it is a primary, every secondary aligned to it (§4.2).
  std::vector<RemapEvent> events;
  {
    RemapEvent event;
    event.dummy = array.id();
    event.from = distribution_of(array);
    event.reason = verb + " " + array.name();
    events.push_back(std::move(event));
  }
  std::vector<ArrayId> followers;
  if (forest_.is_primary(array.id())) {
    followers = forest_.children_of(array.id());
    for (ArrayId child : followers) {
      RemapEvent event;
      event.dummy = child;
      event.from = forest_.distribution_of(child);
      event.reason = verb + " " + array.name() + ": aligned array " +
                     this->array(child).name() + " follows (§4.2)";
      events.push_back(std::move(event));
    }
  }
  Distribution next = build_format_distribution(array.domain(),
                                                std::move(formats),
                                                std::move(target));
  forest_.redistribute(array.id(), next);
  events[0].to = std::move(next);
  for (std::size_t k = 0; k < followers.size(); ++k) {
    events[k + 1].to = forest_.distribution_of(followers[k]);
  }
  return events;
}

std::vector<RemapEvent> DataEnv::redistribute(DistArray& array,
                                              std::vector<DistFormat> formats,
                                              ProcessorRef target) {
  if (array.is_created() && !array.is_dynamic()) {
    throw ConformanceError(
        "REDISTRIBUTE may only be used for arrays declared DYNAMIC (§4.2): "
        "'" + array.name() + "' is not DYNAMIC");
  }
  return redistribute_impl(array, std::move(formats), std::move(target),
                           "REDISTRIBUTE");
}

std::vector<RemapEvent> DataEnv::system_redistribute(
    DistArray& array, std::vector<DistFormat> formats, ProcessorRef target) {
  // No DYNAMIC gate: processor loss forces every affected array onto the
  // survivors, exactly as a compiler's runtime would (fault/recovery.cpp).
  return redistribute_impl(array, std::move(formats), std::move(target),
                           "RECOVER");
}

RemapEvent DataEnv::realign(DistArray& alignee, DistArray& base,
                            const AlignSpec& spec) {
  if (!alignee.is_created()) {
    throw ConformanceError("REALIGN of the unallocated array '" +
                           alignee.name() + "'");
  }
  if (!base.is_created()) {
    throw ConformanceError("REALIGN to the unallocated array '" + base.name() +
                           "'");
  }
  if (!alignee.is_dynamic()) {
    throw ConformanceError(
        "REALIGN may only be used for arrays declared DYNAMIC (§5.2): '" +
        alignee.name() + "' is not DYNAMIC");
  }
  AlignmentFunction alpha = spec.reduce(alignee.domain(), base.domain());
  RemapEvent event;
  event.dummy = alignee.id();
  event.from = distribution_of(alignee);
  forest_.realign(alignee.id(), base.id(), std::move(alpha));
  event.to = distribution_of(alignee);
  event.reason = "REALIGN " + alignee.name() + " WITH " + base.name();
  return event;
}

void DataEnv::allocate(DistArray& array, const IndexDomain& domain) {
  if (!array.is_allocatable()) {
    throw ConformanceError("ALLOCATE of the non-allocatable array '" +
                           array.name() + "'");
  }
  array.create(domain);
  const Deferred& d = deferred_of(array.id());
  switch (d.kind) {
    case Deferred::Kind::kNone:
      forest_.add_primary(array.id(), implicit_distribution(domain));
      break;
    case Deferred::Kind::kDistribute:
      forest_.add_primary(
          array.id(),
          build_format_distribution(domain, d.formats, d.target));
      break;
    case Deferred::Kind::kAlign: {
      const DistArray& base = this->array(d.base);
      if (!base.is_created()) {
        throw ConformanceError(
            "ALLOCATE of '" + array.name() + "': its alignment base '" +
            base.name() + "' is not created (§6 requires the base to exist)");
      }
      AlignmentFunction alpha = d.spec->reduce(domain, base.domain());
      forest_.add_secondary(array.id(), base.id(), std::move(alpha));
      break;
    }
  }
}

void DataEnv::deallocate(DistArray& array) {
  if (!array.is_allocatable()) {
    throw ConformanceError("DEALLOCATE of the non-allocatable array '" +
                           array.name() + "'");
  }
  if (!array.is_created()) {
    throw ConformanceError("DEALLOCATE of the unallocated array '" +
                           array.name() + "'");
  }
  // §6: the array is removed from the alignment forest; each array directly
  // aligned to it becomes the primary of a new tree.
  forest_.remove(array.id());
  array.destroy();
}

const Distribution& DataEnv::distribution_of(const DistArray& array) const {
  if (!array.is_created()) {
    throw ConformanceError("array '" + array.name() +
                           "' has no distribution: it is not created");
  }
  return forest_.distribution_of(array.id());
}

const Distribution& DataEnv::distribution_of(const std::string& name) const {
  return distribution_of(find(name));
}

bool DataEnv::is_primary(const DistArray& array) const {
  return forest_.is_primary(array.id());
}

const DistArray* DataEnv::aligned_to(const DistArray& array) const {
  const ArrayId base = forest_.parent_of(array.id());
  return base == kNoArray ? nullptr : &this->array(base);
}

ProcessorRef DataEnv::default_target(int rank) const {
  auto* self = const_cast<DataEnv*>(this);
  if (rank == 0) {
    const std::string name = "$CTL";
    if (!space_->has(name)) self->space_->declare_scalar(name);
    return ProcessorRef(space_->find(name));
  }
  const std::string name = cat("$AP", rank);
  if (!space_->has(name)) {
    std::vector<Extent> dims = factorize(space_->processor_count(), rank);
    self->space_->declare(name, IndexDomain::of_extents(dims));
  }
  return ProcessorRef(space_->find(name));
}

Distribution DataEnv::implicit_distribution(const IndexDomain& domain) const {
  if (domain.rank() == 0) {
    return Distribution::formats(domain, {}, default_target(0));
  }
  std::vector<DistFormat> formats;
  formats.reserve(static_cast<std::size_t>(domain.rank()));
  formats.push_back(DistFormat::block());
  for (int d = 1; d < domain.rank(); ++d) {
    formats.push_back(DistFormat::collapsed());
  }
  return Distribution::formats(domain, std::move(formats), default_target(1));
}

CallFrame DataEnv::call(const ProcedureSig& sig,
                        const std::vector<ActualArg>& actuals,
                        bool interface_visible) {
  if (sig.dummies.size() != actuals.size()) {
    throw ConformanceError(cat("procedure ", sig.name, " expects ",
                               sig.dummies.size(), " arguments, got ",
                               actuals.size()));
  }
  CallFrame frame;
  frame.procedure = sig.name;
  frame.callee = std::make_unique<DataEnv>(*space_);
  DataEnv& callee = *frame.callee;

  for (std::size_t k = 0; k < sig.dummies.size(); ++k) {
    const DummySpec& spec = sig.dummies[k];
    const ActualArg& actual_arg = actuals[k];
    DistArray& actual = array(actual_arg.array);
    if (!actual.is_created()) {
      throw ConformanceError("actual argument '" + actual.name() +
                             "' is not created");
    }

    Distribution actual_dist = distribution_of(actual);
    IndexDomain dummy_domain;
    Distribution inherited;
    if (actual_arg.section.empty()) {
      dummy_domain = actual.domain();
      inherited = actual_dist;
    } else {
      dummy_domain = actual.domain().section_domain(actual_arg.section);
      inherited =
          Distribution::section_view(actual_dist, actual_arg.section);
    }

    // Register the dummy in the callee scope; its mapping is installed
    // below, outside the caller's alignment forest (§7).
    DistArray& dummy = callee.register_array(std::make_unique<DistArray>(
        next_id(), spec.name, spec.type, dummy_domain, ArrayAttrs{}));
    dummy.mark_dummy();
    if (spec.dynamic) dummy.mark_dynamic();

    Distribution entry;
    switch (spec.mapping.mode) {
      case DummyMapping::Mode::kInherit:
        entry = inherited;
        break;
      case DummyMapping::Mode::kExplicit: {
        entry = callee.build_format_distribution(
            dummy_domain, spec.mapping.formats, spec.mapping.target);
        if (!entry.structurally_equal(inherited) &&
            !entry.same_mapping(inherited)) {
          RemapEvent event;
          event.dummy = dummy.id();
          event.from = inherited;
          event.to = entry;
          event.reason = cat("call ", sig.name, ": explicit distribution of ",
                             spec.name);
          frame.call_events.push_back(std::move(event));
        }
        break;
      }
      case DummyMapping::Mode::kInheritMatch: {
        Distribution specified = callee.build_format_distribution(
            dummy_domain, spec.mapping.formats, spec.mapping.target);
        if (specified.structurally_equal(inherited) ||
            specified.same_mapping(inherited)) {
          entry = inherited;
        } else if (interface_visible) {
          // §7: with the interface visible, the language processor arranges
          // the remapping of the actual argument.
          entry = specified;
          RemapEvent event;
          event.dummy = dummy.id();
          event.from = inherited;
          event.to = entry;
          event.reason = cat("call ", sig.name,
                             ": inheritance-matching remap of ", spec.name);
          frame.call_events.push_back(std::move(event));
        } else {
          throw ConformanceError(
              cat("call ", sig.name, ": the inherited distribution of ",
                  spec.name,
                  " does not match its inheritance-matching specification "
                  "and no interface is visible — the program is not "
                  "HPF-conforming (§7)"));
        }
        break;
      }
      case DummyMapping::Mode::kImplicit: {
        entry = callee.implicit_distribution(dummy_domain);
        if (!entry.structurally_equal(inherited) &&
            !entry.same_mapping(inherited)) {
          RemapEvent event;
          event.dummy = dummy.id();
          event.from = inherited;
          event.to = entry;
          event.reason = cat("call ", sig.name,
                             ": implicit distribution of ", spec.name);
          frame.call_events.push_back(std::move(event));
        }
        break;
      }
    }

    callee.forest_.add_primary(dummy.id(), entry);

    BoundArg bound;
    bound.dummy = dummy.id();
    bound.actual = actual.id();
    bound.section = actual_arg.section;
    bound.inherited = std::move(inherited);
    bound.entry = std::move(entry);
    frame.args.push_back(std::move(bound));
  }
  return frame;
}

std::vector<RemapEvent> DataEnv::return_from(CallFrame& frame) {
  std::vector<RemapEvent> events;
  if (!frame.callee) {
    throw InternalError("return_from on an already-returned frame");
  }
  for (const BoundArg& arg : frame.args) {
    Distribution current = frame.callee->distribution_of(
        frame.callee->array(arg.dummy));
    if (!current.structurally_equal(arg.inherited) &&
        !current.same_mapping(arg.inherited)) {
      RemapEvent event;
      event.dummy = arg.dummy;
      event.from = std::move(current);
      event.to = arg.inherited;
      event.reason = cat("return from ", frame.procedure,
                         ": restore the original distribution (§7)");
      events.push_back(std::move(event));
    }
  }
  return events;
}

}  // namespace hpfnt
