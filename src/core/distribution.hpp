// Distributions (paper §2.2): total index mappings δ : I^A → P(I^R) \ {∅}
// from an array's index domain to the index domain of a processor
// arrangement (or section). Every array element is mapped to one or more
// abstract processors — its owners — which store it in local memory.
//
// A Distribution is an immutable value (cheap to copy; payload shared).
// Four payloads realize the mappings the model needs:
//
//   kFormats      per-dimension distribution formats over an explicit
//                 target — what a DISTRIBUTE directive specifies (§4.1)
//   kConstructed  CONSTRUCT(α, δ_B): the derived distribution of an array
//                 aligned to B (§2.3/Definition 4). Holds α and δ_B, so a
//                 REDISTRIBUTE of the base is reflected automatically when
//                 the forest re-derives (§4.2)
//   kSectionView  the distribution a dummy argument inherits when an array
//                 *section* is passed (§8.1.2: SUB(A(2:996:2))) — the
//                 parent's mapping restricted to the section, renumbered to
//                 the section's own standard domain
//   kExplicit     a materialized per-element owner table; used to freeze a
//                 secondary array's mapping when it is orphaned by REALIGN
//                 or DEALLOCATE (§5.2, §6), and by inherited dummies
//
// Ownership queries never allocate on the single-owner fast path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/alignment.hpp"
#include "core/dist_format.hpp"
#include "core/index_domain.hpp"
#include "core/processors.hpp"
#include "core/types.hpp"

namespace hpfnt {

/// Composes per-dimension owner positions (one set per non-collapsed
/// dimension, ascending dimension order) into the full owner set of a
/// formats distribution: the union of target.owners_at over the cartesian
/// product of the sets, first set varying fastest, first-seen order, no
/// duplicates. The single implementation behind FormatsPayload::owners and
/// LayoutView's analytic run builder — sharing it is what keeps run tables
/// elementwise identical to the per-element query.
OwnerSet compose_dim_owners(
    const ProcessorRef& target,
    const std::array<const DimOwnerSet*, kMaxRank>& sets,
    std::size_t dim_count);

/// Memo of computed run tables (see core/layout_view.hpp), shared by every
/// copy of one distribution payload. Keys are the flattened section
/// triplets; values are type-erased shared_ptr<const RunTable> (erased so
/// this header does not depend on layout_view.hpp). The cache is small and
/// cleared wholesale when full: the sections queried on hot paths are few
/// and recurring (whole domains, stencil shifts, argument sections).
class RunMemo {
 public:
  std::shared_ptr<const void> lookup(const std::vector<Index1>& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : it->second;
  }

  void insert(const std::vector<Index1>& key,
              std::shared_ptr<const void> table, bool whole_domain) {
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.size() >= kMaxEntries && entries_.count(key) == 0) {
      entries_.clear();
    }
    entries_[key] = table;
    if (whole_domain && !whole_) {
      // Armed at most once, and whole_ is never replaced or cleared, so the
      // published raw pointer stays valid for the payload's lifetime.
      whole_ = std::move(table);
      whole_raw_.store(whole_.get(), std::memory_order_release);
    }
  }

  /// Lock-free fast path for the owners() compatibility shim: null until a
  /// whole-domain run table has been memoized (it survives cache eviction;
  /// the pointee is a RunTable, kept alive by this memo).
  const void* whole_table() const {
    return whole_raw_.load(std::memory_order_acquire);
  }

 private:
  static constexpr std::size_t kMaxEntries = 16;
  mutable std::mutex mu_;
  std::map<std::vector<Index1>, std::shared_ptr<const void>> entries_;
  std::shared_ptr<const void> whole_;
  std::atomic<const void*> whole_raw_{nullptr};
};

class Distribution {
 public:
  enum class Kind { kFormats, kConstructed, kSectionView, kExplicit };

  Distribution() = default;

  /// DISTRIBUTE array(formats...) TO target. The number of non-":" formats
  /// must equal the target's rank (§4.1); a conceptually scalar target
  /// requires all-":" formats.
  static Distribution formats(const IndexDomain& array_domain,
                              std::vector<DistFormat> format_list,
                              ProcessorRef target);

  /// CONSTRUCT(α, δ_B) — Definition 4. α's base domain must equal the base
  /// distribution's domain.
  static Distribution constructed(AlignmentFunction alpha, Distribution base);

  /// The mapping of `section` of an array distributed by `parent`, as seen
  /// by a dummy argument with its own standard [1:size] domain.
  static Distribution section_view(Distribution parent,
                                   std::vector<Triplet> section);

  /// A materialized mapping; owners_by_position is indexed by the domain's
  /// linearization and each entry must be non-empty (totality, §2.2).
  static Distribution explicit_map(IndexDomain domain,
                                   std::vector<OwnerSet> owners_by_position);

  /// Replicates every element of `domain` over all of `target`.
  static Distribution replicated(const IndexDomain& domain,
                                 ProcessorRef target);

  bool valid() const noexcept { return payload_ != nullptr; }
  Kind kind() const;

  /// The distributee's index domain I^A.
  const IndexDomain& domain() const;

  /// δ(index): the owning abstract processors. Never empty.
  ///
  /// Per-element compatibility shim over the run-based API: bulk consumers
  /// should build a LayoutView (core/layout_view.hpp) and iterate its
  /// constant-owner runs instead. Once a whole-domain run table has been
  /// memoized this answers from it; otherwise it falls through to the
  /// payload's per-element mapping.
  OwnerSet owners(const IndexTuple& index) const;

  /// Per-element payload query that never consults the run-table memo.
  /// This is the primitive LayoutView probes at run boundaries (and the
  /// independent oracle for its tests); everything else wants owners().
  OwnerSet owners_uncached(const IndexTuple& index) const;

  /// The first owner (canonical "computing" replica).
  ApId first_owner(const IndexTuple& index) const;

  bool is_owner(ApId p, const IndexTuple& index) const;

  /// True when some element may have more than one owner.
  bool replicates() const;

  /// Number of elements p owns (counting each owned element once).
  Extent local_count(ApId p) const;

  /// Calls fn for every index owned by p, in Fortran order.
  void for_each_owned(ApId p,
                      const std::function<void(const IndexTuple&)>& fn) const;

  /// Freezes the mapping into a kExplicit distribution (used when the
  /// forest must detach a derived distribution from its base).
  Distribution materialize() const;

  /// Element-wise equality of mappings: same domain and same owner sets
  /// everywhere. O(|I^A| · rank). This is the semantic comparison behind
  /// inheritance matching (§7, mode 3).
  bool same_mapping(const Distribution& other) const;

  /// Fast structural comparison: true for two kFormats distributions with
  /// equal domains, formats, and targets; for two kConstructed
  /// distributions whose alignment functions are structurally equal and
  /// whose bases compare structurally equal in turn; for two kSectionView
  /// distributions with equal restricting triplets over structurally equal
  /// parents; and for two kExplicit distributions with equal domains and
  /// element-wise equal owner tables (tables are canonicalized — sorted —
  /// at construction, so this is a plain vector comparison). (May return
  /// false for mappings that are element-wise equal.)
  bool structurally_equal(const Distribution& other) const;

  /// True when the payload's mapping is fully captured by a compact
  /// *content* signature (append_plan_signature). Every payload kind now
  /// qualifies: formats serialize their specification (INDIRECT and
  /// user-defined formats digest their bound owner tables), constructed
  /// payloads compose α with the base's signature, section views compose
  /// the restricting triplets with the parent's signature, and explicit
  /// payloads digest their owner table. False only for invalid
  /// distributions.
  bool has_plan_signature() const noexcept;

  /// Appends the payload's content plan signature to `out`: a byte string
  /// equal for two distributions exactly when any priced communication
  /// schedule over them is interchangeable — the PlanCache key component
  /// (exec/comm_plan.hpp) that lets two payloads minted at different
  /// addresses (the fresh section-view dummy of every procedure call)
  /// share one plan. Table-backed content enters as a memoized 64-bit
  /// FNV-1a digest, so signatures stay cheap for large owner tables; the
  /// digest is computed once per payload (payloads are immutable, like
  /// their run-table memos, so it is never invalidated).
  void append_plan_signature(std::string& out) const;

  /// Accessors for kFormats payloads; throw InternalError otherwise.
  const std::vector<DistFormat>& format_list() const;
  const ProcessorRef& target() const;
  const DimMapping& dim_mapping(int dim) const;

  /// Accessors for kConstructed payloads.
  const AlignmentFunction& alignment() const;
  const Distribution& base() const;

  /// Accessors for kSectionView payloads.
  const Distribution& section_parent() const;
  const std::vector<Triplet>& section_triplets() const;

  /// The payload's run-table memo (valid distributions only). Written by
  /// LayoutView; read by the owners() shim.
  RunMemo& run_memo() const;

  /// Stable identity of the shared payload: equal iff two Distributions
  /// share one payload. Used as a plan-cache key component for payload
  /// kinds without a cheap structural signature (exec/comm_plan.hpp); the
  /// cache pins the Distribution so the address cannot be recycled while a
  /// keyed plan lives. Null for invalid distributions.
  const void* payload_identity() const noexcept { return payload_.get(); }

  /// Monotonically increasing id assigned to every payload at construction;
  /// unique for the lifetime of the process, never reused. Keyed alongside
  /// payload_identity() so a plan recorded against a destroyed payload can
  /// never be replayed for a different payload that the allocator placed at
  /// the same address (exec/comm_plan.hpp). 0 for invalid distributions.
  std::uint64_t payload_generation() const noexcept;

  /// Human-readable description, e.g. "(BLOCK, CYCLIC(4)) TO PR".
  std::string to_string() const;

 private:
  struct Payload;
  struct FormatsPayload;
  struct ConstructedPayload;
  struct SectionPayload;
  struct ExplicitPayload;

  explicit Distribution(std::shared_ptr<const Payload> payload)
      : payload_(std::move(payload)) {}

  const Payload& payload() const;

  std::shared_ptr<const Payload> payload_;
};

}  // namespace hpfnt
