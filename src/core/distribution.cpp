#include "core/distribution.hpp"

#include <algorithm>
#include <array>

#include "core/layout_view.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace hpfnt {

namespace {

void insert_unique(OwnerSet& set, ApId p) {
  for (ApId q : set) {
    if (q == p) return;
  }
  set.push_back(p);
}

OwnerSet sorted(OwnerSet set) {
  std::sort(set.begin(), set.end());
  return set;
}

}  // namespace

OwnerSet compose_dim_owners(
    const ProcessorRef& target,
    const std::array<const DimOwnerSet*, kMaxRank>& sets,
    std::size_t dim_count) {
  OwnerSet out;
  bool any_multi = false;
  for (std::size_t k = 0; k < dim_count; ++k) {
    if (sets[k]->size() > 1) any_multi = true;
  }
  IndexTuple coords;
  coords.resize(dim_count);
  if (!any_multi) {
    for (std::size_t k = 0; k < dim_count; ++k) coords[k] = sets[k]->front();
    for (ApId p : target.owners_at(coords)) insert_unique(out, p);
    return out;
  }
  // Cartesian product over replicated per-dimension owner sets, first
  // dimension's positions varying fastest.
  SmallVector<Index1, kMaxRank> pos(dim_count, 0);
  while (true) {
    for (std::size_t k = 0; k < dim_count; ++k) {
      coords[k] = (*sets[k])[static_cast<std::size_t>(pos[k])];
    }
    for (ApId p : target.owners_at(coords)) insert_unique(out, p);
    std::size_t k = 0;
    for (; k < dim_count; ++k) {
      if (static_cast<std::size_t>(++pos[k]) < sets[k]->size()) break;
      pos[k] = 0;
    }
    if (k == dim_count) break;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Payload hierarchy (internal).
// ---------------------------------------------------------------------------

namespace {

std::uint64_t next_payload_generation() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

struct Distribution::Payload {
  virtual ~Payload() = default;

  // Run tables computed by LayoutView, shared by all copies of this payload.
  mutable RunMemo memo;

  // Process-unique, never-reused id (see Distribution::payload_generation).
  const std::uint64_t generation = next_payload_generation();

  virtual Kind kind() const = 0;
  virtual const IndexDomain& domain() const = 0;
  virtual OwnerSet owners(const IndexTuple& index) const = 0;
  virtual bool replicates() const = 0;
  virtual std::string to_string() const = 0;

  // Generic element-iteration fallbacks; specialized payloads override.
  virtual Extent local_count(ApId p) const {
    Extent count = 0;
    domain().for_each([&](const IndexTuple& idx) {
      for (ApId q : owners(idx)) {
        if (q == p) {
          ++count;
          break;
        }
      }
    });
    return count;
  }

  virtual void for_each_owned(
      ApId p, const std::function<void(const IndexTuple&)>& fn) const {
    domain().for_each([&](const IndexTuple& idx) {
      for (ApId q : owners(idx)) {
        if (q == p) {
          fn(idx);
          break;
        }
      }
    });
  }
};

// --- kFormats ---------------------------------------------------------------

struct Distribution::FormatsPayload final : Distribution::Payload {
  IndexDomain array_domain;
  std::vector<DistFormat> format_list;
  ProcessorRef target;
  std::vector<DimMapping> mappings;   // one per array dimension
  std::vector<int> target_dim_of;     // -1 for collapsed dimensions

  Kind kind() const override { return Kind::kFormats; }
  const IndexDomain& domain() const override { return array_domain; }

  bool replicates() const override {
    for (const DimMapping& m : mappings) {
      if (m.may_replicate()) return true;
    }
    if (target.arrangement().is_scalar()) {
      // Replication depends on the space's scalar-placement policy; probe.
      return target.owners_at(IndexTuple{}).size() > 1;
    }
    return false;
  }

  OwnerSet owners(const IndexTuple& index) const override {
    if (!array_domain.contains(index)) {
      throw MappingError(cat("index outside distributee domain ",
                             array_domain.to_string()));
    }
    const int n = array_domain.rank();
    // Per-dimension owner positions; usually singletons. A fixed-size array
    // (rank <= kMaxRank, DimOwnerSet inline) keeps the single-owner fast
    // path free of heap allocation.
    std::array<DimOwnerSet, kMaxRank> dim_owners;
    std::array<const DimOwnerSet*, kMaxRank> dim_sets{};
    std::size_t dim_count = 0;
    for (int d = 0; d < n; ++d) {
      const DimMapping& m = mappings[static_cast<std::size_t>(d)];
      if (m.kind() == FormatKind::kCollapsed) continue;
      const Index1 norm =
          index[static_cast<std::size_t>(d)] - array_domain.lower(d) + 1;
      dim_owners[dim_count] = m.owners(norm);
      dim_sets[dim_count] = &dim_owners[dim_count];
      ++dim_count;
    }
    return compose_dim_owners(target, dim_sets, dim_count);
  }

  Extent local_count(ApId p) const override {
    Extent total = 0;
    target.domain().for_each([&](const IndexTuple& coords) {
      OwnerSet procs = target.owners_at(coords);
      bool mine = false;
      for (ApId q : procs) {
        if (q == p) mine = true;
      }
      if (!mine) return;
      Extent product = 1;
      std::size_t c = 0;
      for (std::size_t d = 0; d < mappings.size(); ++d) {
        const DimMapping& m = mappings[d];
        if (m.kind() == FormatKind::kCollapsed) {
          product *= m.n();
        } else {
          product *= m.local_count(coords[c++]);
        }
      }
      total += product;
    });
    return total;
  }

  void for_each_owned(
      ApId p, const std::function<void(const IndexTuple&)>& fn) const override {
    const int n = array_domain.rank();
    target.domain().for_each([&](const IndexTuple& coords) {
      OwnerSet procs = target.owners_at(coords);
      bool mine = false;
      for (ApId q : procs) {
        if (q == p) mine = true;
      }
      if (!mine) return;
      // Enumerate the cartesian product of per-dimension owned index lists
      // in Fortran order (first dimension fastest).
      std::vector<std::vector<Index1>> lists(static_cast<std::size_t>(n));
      std::size_t c = 0;
      for (int d = 0; d < n; ++d) {
        const DimMapping& m = mappings[static_cast<std::size_t>(d)];
        auto& list = lists[static_cast<std::size_t>(d)];
        const Index1 base = array_domain.lower(d) - 1;
        if (m.kind() == FormatKind::kCollapsed) {
          list.reserve(static_cast<std::size_t>(m.n()));
          for (Index1 i = 1; i <= m.n(); ++i) list.push_back(base + i);
        } else {
          m.for_each_owned(coords[c++],
                           [&](Index1 i) { list.push_back(base + i); });
        }
        if (list.empty()) return;  // this coordinate owns nothing
      }
      IndexTuple idx;
      idx.resize(static_cast<std::size_t>(n));
      SmallVector<Index1, kMaxRank> pos(static_cast<std::size_t>(n), 0);
      for (int d = 0; d < n; ++d) {
        idx[static_cast<std::size_t>(d)] =
            lists[static_cast<std::size_t>(d)].front();
      }
      while (true) {
        fn(idx);
        int d = 0;
        for (; d < n; ++d) {
          auto& list = lists[static_cast<std::size_t>(d)];
          if (static_cast<std::size_t>(++pos[static_cast<std::size_t>(d)]) <
              list.size()) {
            idx[static_cast<std::size_t>(d)] =
                list[static_cast<std::size_t>(pos[static_cast<std::size_t>(d)])];
            break;
          }
          pos[static_cast<std::size_t>(d)] = 0;
          idx[static_cast<std::size_t>(d)] = list.front();
        }
        if (d == n) break;
      }
    });
  }

  std::string to_string() const override {
    std::vector<std::string> parts;
    parts.reserve(format_list.size());
    for (const DistFormat& f : format_list) parts.push_back(f.to_string());
    return "(" + join(parts, ", ") + ") TO " + target.to_string();
  }
};

// --- kConstructed ------------------------------------------------------------

struct Distribution::ConstructedPayload final : Distribution::Payload {
  AlignmentFunction alpha;
  Distribution base_dist;

  ConstructedPayload(AlignmentFunction a, Distribution b)
      : alpha(std::move(a)), base_dist(std::move(b)) {}

  Kind kind() const override { return Kind::kConstructed; }
  const IndexDomain& domain() const override {
    return alpha.alignee_domain();
  }

  bool replicates() const override {
    return alpha.replicates() || base_dist.replicates();
  }

  OwnerSet owners(const IndexTuple& index) const override {
    // Definition 4: δ_A(i) = union of δ_B(j) over j in α(i).
    OwnerSet out;
    alpha.for_each_image(index, [&](const IndexTuple& j) {
      for (ApId p : base_dist.owners(j)) insert_unique(out, p);
    });
    return out;
  }

  std::string to_string() const override {
    return "ALIGNED " + alpha.to_string() + " WITH " + base_dist.to_string();
  }
};

// --- kSectionView -------------------------------------------------------------

struct Distribution::SectionPayload final : Distribution::Payload {
  Distribution parent;
  std::vector<Triplet> section;
  IndexDomain view_domain;

  Kind kind() const override { return Kind::kSectionView; }
  const IndexDomain& domain() const override { return view_domain; }
  bool replicates() const override { return parent.replicates(); }

  OwnerSet owners(const IndexTuple& index) const override {
    if (!view_domain.contains(index)) {
      throw MappingError("index outside section-view domain");
    }
    return parent.owners(
        parent.domain().section_parent_index(section, index));
  }

  std::string to_string() const override {
    std::vector<std::string> parts;
    for (const Triplet& t : section) parts.push_back(t.to_string());
    return "SECTION(" + join(parts, ", ") + ") OF " + parent.to_string();
  }
};

// --- kExplicit -----------------------------------------------------------------

struct Distribution::ExplicitPayload final : Distribution::Payload {
  IndexDomain map_domain;
  std::vector<OwnerSet> owner_table;
  bool any_replicated = false;
  // Lazily computed FNV-1a digest of the owner table (0 = not yet
  // computed; the computed value is forced nonzero). Atomic so concurrent
  // first queries race benignly to the same value. Like the run-table
  // memo, it lives on the immutable payload, so it needs no invalidation.
  mutable std::atomic<std::uint64_t> digest{0};

  std::uint64_t content_digest() const {
    std::uint64_t d = digest.load(std::memory_order_acquire);
    if (d != 0) return d;
    d = fnv1a_basis;
    for (const OwnerSet& set : owner_table) {
      // Sets are sorted at construction (explicit_map), so the bytes are
      // canonical: elementwise-equal tables digest equal.
      d = fnv1a_mix(d, static_cast<Extent>(set.size()));
      for (ApId p : set) d = fnv1a_mix(d, p);
    }
    if (d == 0) d = 1;
    digest.store(d, std::memory_order_release);
    return d;
  }

  Kind kind() const override { return Kind::kExplicit; }
  const IndexDomain& domain() const override { return map_domain; }
  bool replicates() const override { return any_replicated; }

  OwnerSet owners(const IndexTuple& index) const override {
    return owner_table[static_cast<std::size_t>(map_domain.linearize(index))];
  }

  std::string to_string() const override {
    return cat("EXPLICIT(<", owner_table.size(), " elements>)");
  }
};

// ---------------------------------------------------------------------------
// Distribution (public surface).
// ---------------------------------------------------------------------------

Distribution Distribution::formats(const IndexDomain& array_domain,
                                   std::vector<DistFormat> format_list,
                                   ProcessorRef target) {
  if (!target.valid()) {
    throw ConformanceError("DISTRIBUTE requires a distribution target");
  }
  const int n = array_domain.rank();
  if (n > kMaxRank) {
    throw ConformanceError(cat("distributee rank ", n, " exceeds the Fortran "
                               "90 maximum of ", kMaxRank, " (R512)"));
  }
  if (static_cast<int>(format_list.size()) != n) {
    throw ConformanceError(
        cat("distribution format list has length ", format_list.size(),
            " but the distributee has rank ", n,
            " (§4.1: the length of this list must be n)"));
  }
  int distributed_dims = 0;
  for (const DistFormat& f : format_list) {
    if (!f.is_collapsed()) ++distributed_dims;
  }
  if (distributed_dims != target.rank()) {
    throw ConformanceError(
        cat("distribution target ", target.to_string(), " has rank ",
            target.rank(), " but the format list distributes ",
            distributed_dims,
            " dimensions (§4.1: the rank of R must be n reduced by the "
            "number of colons)"));
  }
  auto payload = std::make_shared<FormatsPayload>();
  payload->array_domain = array_domain;
  payload->target = std::move(target);
  payload->mappings.reserve(static_cast<std::size_t>(n));
  payload->target_dim_of.assign(static_cast<std::size_t>(n), -1);
  int next_target_dim = 0;
  for (int d = 0; d < n; ++d) {
    const DistFormat& f = format_list[static_cast<std::size_t>(d)];
    if (f.is_collapsed()) {
      payload->mappings.push_back(
          DimMapping::bind(f, array_domain.extent(d), 1));
    } else {
      payload->target_dim_of[static_cast<std::size_t>(d)] = next_target_dim;
      payload->mappings.push_back(DimMapping::bind(
          f, array_domain.extent(d), payload->target.extent(next_target_dim)));
      ++next_target_dim;
    }
  }
  payload->format_list = std::move(format_list);
  return Distribution(std::move(payload));
}

Distribution Distribution::constructed(AlignmentFunction alpha,
                                       Distribution base) {
  if (!base.valid()) {
    throw ConformanceError("CONSTRUCT requires a base distribution");
  }
  if (alpha.base_domain() != base.domain()) {
    throw ConformanceError(
        "CONSTRUCT: the alignment's base domain differs from the base "
        "distribution's domain");
  }
  return Distribution(std::make_shared<ConstructedPayload>(std::move(alpha),
                                                           std::move(base)));
}

Distribution Distribution::section_view(Distribution parent,
                                        std::vector<Triplet> section) {
  if (!parent.valid()) {
    throw ConformanceError("section view requires a parent distribution");
  }
  auto payload = std::make_shared<SectionPayload>();
  payload->view_domain = parent.domain().section_domain(section);
  payload->parent = std::move(parent);
  payload->section = std::move(section);
  return Distribution(std::move(payload));
}

Distribution Distribution::explicit_map(IndexDomain domain,
                                        std::vector<OwnerSet> owners) {
  if (static_cast<Extent>(owners.size()) != domain.size()) {
    throw ConformanceError(cat("explicit owner table has ", owners.size(),
                               " entries for a domain of size ",
                               domain.size()));
  }
  auto payload = std::make_shared<ExplicitPayload>();
  for (OwnerSet& set : owners) {
    if (set.empty()) {
      throw ConformanceError(
          "distributions are total (§2.2): every element needs >= 1 owner");
    }
    set = sorted(std::move(set));
    if (set.size() > 1) payload->any_replicated = true;
  }
  payload->map_domain = std::move(domain);
  payload->owner_table = std::move(owners);
  return Distribution(std::move(payload));
}

Distribution Distribution::replicated(const IndexDomain& domain,
                                      ProcessorRef target) {
  std::vector<ApId> aps = target.all_aps();
  OwnerSet everyone;
  for (ApId p : aps) insert_unique(everyone, p);
  std::vector<OwnerSet> owners(static_cast<std::size_t>(domain.size()),
                               everyone);
  return explicit_map(domain, std::move(owners));
}

const Distribution::Payload& Distribution::payload() const {
  if (!payload_) throw InternalError("empty Distribution dereferenced");
  return *payload_;
}

Distribution::Kind Distribution::kind() const { return payload().kind(); }

const IndexDomain& Distribution::domain() const { return payload().domain(); }

OwnerSet Distribution::owners(const IndexTuple& index) const {
  const Payload& p = payload();
  if (const void* table = p.memo.whole_table()) {
    const RunTable& runs = *static_cast<const RunTable*>(table);
    return owner_set_at(runs, p.domain().linearize(index));
  }
  return p.owners(index);
}

OwnerSet Distribution::owners_uncached(const IndexTuple& index) const {
  return payload().owners(index);
}

ApId Distribution::first_owner(const IndexTuple& index) const {
  OwnerSet set = owners(index);
  ApId best = set.front();
  for (ApId p : set) best = std::min(best, p);
  return best;
}

bool Distribution::is_owner(ApId p, const IndexTuple& index) const {
  for (ApId q : owners(index)) {
    if (q == p) return true;
  }
  return false;
}

bool Distribution::replicates() const { return payload().replicates(); }

Extent Distribution::local_count(ApId p) const {
  return payload().local_count(p);
}

void Distribution::for_each_owned(
    ApId p, const std::function<void(const IndexTuple&)>& fn) const {
  payload().for_each_owned(p, fn);
}

Distribution Distribution::materialize() const {
  const IndexDomain& dom = domain();
  std::vector<OwnerSet> table;
  table.reserve(static_cast<std::size_t>(dom.size()));
  // Runs partition the linear positions [0, size) in Fortran order — the
  // same order for_each visits — so one ownership decision per run covers
  // the whole constant segment.
  const LayoutView view = LayoutView::whole(*this);
  view.for_each_run([&](const OwnerRun& run) {
    for (Extent k = 0; k < run.count; ++k) table.push_back(run.owners);
  });
  return explicit_map(dom, std::move(table));
}

bool Distribution::same_mapping(const Distribution& other) const {
  if (domain() != other.domain()) return false;
  const LayoutView mine = LayoutView::whole(*this);
  const LayoutView theirs = LayoutView::whole(other);
  bool equal = true;
  for_each_common_segment(
      mine.table(), theirs.table(),
      [&](Extent, Extent, const OwnerSet& a, const OwnerSet& b) {
        if (!equal) return;
        if (sorted(a) != sorted(b)) equal = false;
      });
  return equal;
}

bool Distribution::structurally_equal(const Distribution& other) const {
  if (payload_ == other.payload_) return valid();
  if (!valid() || !other.valid() || kind() != other.kind()) return false;
  switch (kind()) {
    case Kind::kConstructed: {
      const auto& a = static_cast<const ConstructedPayload&>(payload());
      const auto& b = static_cast<const ConstructedPayload&>(other.payload());
      return a.alpha.structurally_equal(b.alpha) &&
             a.base_dist.structurally_equal(b.base_dist);
    }
    case Kind::kFormats: {
      const auto& a = static_cast<const FormatsPayload&>(payload());
      const auto& b = static_cast<const FormatsPayload&>(other.payload());
      if (!(a.array_domain == b.array_domain &&
            a.format_list == b.format_list && a.target == b.target)) {
        return false;
      }
      // DistFormat equality compares user-defined formats by *name* only,
      // and two same-named functions can map differently — confirm their
      // bound owner content (the same digests the plan keys use), so
      // structural equality and plan keys can never disagree and a
      // call-site remap is never skipped for a renamed-but-different
      // mapping.
      for (std::size_t d = 0; d < a.format_list.size(); ++d) {
        if (a.format_list[d].kind() == FormatKind::kUserDefined &&
            a.mappings[d].content_digest() != b.mappings[d].content_digest()) {
          return false;
        }
      }
      return true;
    }
    case Kind::kSectionView: {
      const auto& a = static_cast<const SectionPayload&>(payload());
      const auto& b = static_cast<const SectionPayload&>(other.payload());
      return a.section == b.section &&
             a.parent.structurally_equal(b.parent);
    }
    case Kind::kExplicit: {
      // Owner tables are canonicalized (sorted) at construction, so
      // element-wise vector equality is the structural comparison; the
      // digests screen out the common unequal case first.
      const auto& a = static_cast<const ExplicitPayload&>(payload());
      const auto& b = static_cast<const ExplicitPayload&>(other.payload());
      return a.map_domain == b.map_domain &&
             a.content_digest() == b.content_digest() &&
             a.owner_table == b.owner_table;
    }
  }
  return false;
}

bool Distribution::has_plan_signature() const noexcept {
  return payload_ != nullptr;
}

void Distribution::append_plan_signature(std::string& out) const {
  switch (kind()) {
    case Kind::kFormats: {
      const auto& p = static_cast<const FormatsPayload&>(payload());
      // Value signature: domain bounds, format list, target. Formats whose
      // specification is an opaque table (INDIRECT) or function
      // (user-defined — DistFormat compares those by *name* only) enter as
      // the digest of their bound owner content, so two same-named user
      // formats with different mappings can never share a plan.
      out += 'F';
      p.array_domain.append_signature(out);
      for (std::size_t d = 0; d < p.format_list.size(); ++d) {
        const DistFormat& f = p.format_list[d];
        out += static_cast<char>('a' + static_cast<int>(f.kind()));
        switch (f.kind()) {
          case FormatKind::kCyclic:
            append_raw(out, f.cyclic_k());
            break;
          case FormatKind::kGeneralBlock:
            append_raw(out, static_cast<Extent>(f.general_bounds().size()));
            for (Extent b : f.general_bounds()) append_raw(out, b);
            break;
          case FormatKind::kIndirect:
          case FormatKind::kUserDefined:
            append_raw(out, p.mappings[d].content_digest());
            break;
          case FormatKind::kBlock:
          case FormatKind::kViennaBlock:
          case FormatKind::kCollapsed:
            break;
        }
      }
      p.target.append_signature(out);
      return;
    }
    case Kind::kConstructed: {
      // CONSTRUCT(α, δ_B) is a pure function of α and δ_B, so its
      // signature is α's serialization composed with the base's. An
      // identity α constructs exactly δ_B; collapsing it to the base's own
      // signature lets an aligned array share plans with — and key
      // identically to — its base, so an ALIGN-ed Jacobi's two sweep
      // directions produce one plan, like two equal-format primaries do.
      const auto& p = static_cast<const ConstructedPayload&>(payload());
      if (p.alpha.is_identity()) {
        p.base_dist.append_plan_signature(out);
        return;
      }
      out += 'C';
      // The α serialization (domains, clamp policy, per-dimension
      // expression trees) is the same bytes AlignmentFunction::
      // structurally_equal compares, so equal-α layouts share keys by
      // construction.
      p.alpha.append_signature(out);
      p.base_dist.append_plan_signature(out);
      return;
    }
    case Kind::kSectionView: {
      // A section view is a pure function of the parent's mapping and the
      // restricting triplets, so — like kConstructed recursing through α —
      // it serializes the triplets composed with the parent's signature.
      // This is what gives the fresh section-view dummy minted at every
      // procedure call (DataEnv::call) a key equal to last call's.
      const auto& p = static_cast<const SectionPayload&>(payload());
      out += 'V';
      append_raw(out, static_cast<Extent>(p.section.size()));
      for (const Triplet& t : p.section) t.append_signature(out);
      p.parent.append_plan_signature(out);
      return;
    }
    case Kind::kExplicit: {
      const auto& p = static_cast<const ExplicitPayload&>(payload());
      out += 'X';
      p.map_domain.append_signature(out);
      append_raw(out, p.content_digest());
      return;
    }
  }
  throw InternalError("unreachable distribution kind");
}

const std::vector<DistFormat>& Distribution::format_list() const {
  if (kind() != Kind::kFormats) {
    throw InternalError("format_list on a non-format distribution");
  }
  return static_cast<const FormatsPayload&>(payload()).format_list;
}

const ProcessorRef& Distribution::target() const {
  if (kind() != Kind::kFormats) {
    throw InternalError("target on a non-format distribution");
  }
  return static_cast<const FormatsPayload&>(payload()).target;
}

const DimMapping& Distribution::dim_mapping(int dim) const {
  if (kind() != Kind::kFormats) {
    throw InternalError("dim_mapping on a non-format distribution");
  }
  return static_cast<const FormatsPayload&>(payload())
      .mappings.at(static_cast<std::size_t>(dim));
}

const AlignmentFunction& Distribution::alignment() const {
  if (kind() != Kind::kConstructed) {
    throw InternalError("alignment on a non-constructed distribution");
  }
  return static_cast<const ConstructedPayload&>(payload()).alpha;
}

const Distribution& Distribution::base() const {
  if (kind() != Kind::kConstructed) {
    throw InternalError("base on a non-constructed distribution");
  }
  return static_cast<const ConstructedPayload&>(payload()).base_dist;
}

const Distribution& Distribution::section_parent() const {
  if (kind() != Kind::kSectionView) {
    throw InternalError("section_parent on a non-section distribution");
  }
  return static_cast<const SectionPayload&>(payload()).parent;
}

const std::vector<Triplet>& Distribution::section_triplets() const {
  if (kind() != Kind::kSectionView) {
    throw InternalError("section_triplets on a non-section distribution");
  }
  return static_cast<const SectionPayload&>(payload()).section;
}

RunMemo& Distribution::run_memo() const { return payload().memo; }

std::uint64_t Distribution::payload_generation() const noexcept {
  return payload_ ? payload_->generation : 0;
}

std::string Distribution::to_string() const {
  return valid() ? payload().to_string() : "<undistributed>";
}

}  // namespace hpfnt
