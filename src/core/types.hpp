// Fundamental scalar and tuple types of the mapping model (paper §2.1).
#pragma once

#include <cstdint>

#include "support/small_vector.hpp"

namespace hpfnt {

/// One subscript value. Fortran subscripts may be negative and large, so a
/// signed 64-bit type is used throughout the model layer.
using Index1 = std::int64_t;

/// Number of elements along one dimension, or total element counts.
using Extent = std::int64_t;

/// Maximum array rank, as in Fortran 90 (R512: up to seven dimensions).
inline constexpr int kMaxRank = 7;

/// An index: an n-dimensional subscript tuple (paper §2.1). Rank <= 7 keeps
/// tuples inline; no allocation occurs in ownership lookups.
using IndexTuple = SmallVector<Index1, kMaxRank>;

/// Linear id of an abstract processor in AP (paper §3), 0-based.
using ApId = std::int64_t;

/// Identity of a declared array within a program run.
using ArrayId = int;
inline constexpr ArrayId kNoArray = -1;

/// A small set of owning processors; replication rarely exceeds a handful
/// of owners except for full-dimension replication, which spills gracefully.
using OwnerSet = SmallVector<ApId, 8>;

/// The smallest owner id — the canonical "computing"/"sending" replica,
/// matching Distribution::first_owner. Owner sets are not sorted in
/// general (user-defined replication yields them in user order), so
/// set.front() is never a correct replica choice.
inline ApId min_owner(const OwnerSet& set) {
  ApId best = set.front();
  for (ApId p : set) best = p < best ? p : best;
  return best;
}

inline bool owner_set_contains(const OwnerSet& set, ApId p) {
  for (ApId q : set) {
    if (q == p) return true;
  }
  return false;
}

}  // namespace hpfnt
