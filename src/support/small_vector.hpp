// SmallVector: a vector with inline storage for the first `N` elements.
//
// Index tuples, owner sets and per-dimension descriptors in this library
// almost always have rank <= 7, so the hot paths (ownership lookups in
// distribution functions, alignment evaluation) must not allocate.
// This container keeps up to N trivially-copyable elements inline and only
// spills to the heap beyond that.
//
// Only the operations the library needs are provided; the element type must
// be trivially copyable (indices, ids, extents), which keeps the
// implementation simple and the moves cheap.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <type_traits>

namespace hpfnt {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is restricted to trivially copyable elements");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  SmallVector(std::size_t count, const T& value) {
    reserve(count);
    for (std::size_t i = 0; i < count; ++i) push_back(value);
  }

  SmallVector(const SmallVector& other) { copy_from(other); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      release();
      copy_from(other);
    }
    return *this;
  }

  SmallVector(SmallVector&& other) noexcept { steal_from(other); }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      release();
      steal_from(other);
    }
    return *this;
  }

  ~SmallVector() { release(); }

  T* data() noexcept { return ptr_; }
  const T* data() const noexcept { return ptr_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return capacity_; }

  T& operator[](std::size_t i) noexcept { return ptr_[i]; }
  const T& operator[](std::size_t i) const noexcept { return ptr_[i]; }
  T& front() noexcept { return ptr_[0]; }
  const T& front() const noexcept { return ptr_[0]; }
  T& back() noexcept { return ptr_[size_ - 1]; }
  const T& back() const noexcept { return ptr_[size_ - 1]; }

  iterator begin() noexcept { return ptr_; }
  iterator end() noexcept { return ptr_ + size_; }
  const_iterator begin() const noexcept { return ptr_; }
  const_iterator end() const noexcept { return ptr_ + size_; }
  const_iterator cbegin() const noexcept { return ptr_; }
  const_iterator cend() const noexcept { return ptr_ + size_; }

  void clear() noexcept { size_ = 0; }

  void reserve(std::size_t want) {
    if (want <= capacity_) return;
    std::size_t grown = std::max(want, capacity_ * 2);
    T* fresh = new T[grown];
    std::memcpy(static_cast<void*>(fresh), ptr_, size_ * sizeof(T));
    if (ptr_ != inline_storage()) delete[] ptr_;
    ptr_ = fresh;
    capacity_ = grown;
  }

  void resize(std::size_t count, const T& value = T{}) {
    reserve(count);
    for (std::size_t i = size_; i < count; ++i) ptr_[i] = value;
    size_ = count;
  }

  void push_back(const T& v) {
    reserve(size_ + 1);
    ptr_[size_++] = v;
  }

  void pop_back() noexcept { --size_; }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const SmallVector& a, const SmallVector& b) {
    return !(a == b);
  }

 private:
  T* inline_storage() noexcept { return reinterpret_cast<T*>(inline_); }

  void release() noexcept {
    if (ptr_ != inline_storage()) delete[] ptr_;
    ptr_ = inline_storage();
    capacity_ = N;
    size_ = 0;
  }

  void copy_from(const SmallVector& other) {
    reserve(other.size_);
    std::memcpy(static_cast<void*>(ptr_), other.ptr_, other.size_ * sizeof(T));
    size_ = other.size_;
  }

  void steal_from(SmallVector& other) noexcept {
    if (other.ptr_ != other.inline_storage()) {
      ptr_ = other.ptr_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.ptr_ = other.inline_storage();
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      copy_from(other);
      other.size_ = 0;
    }
  }

  alignas(T) std::byte inline_[N * sizeof(T)];
  T* ptr_ = inline_storage();
  std::size_t capacity_ = N;
  std::size_t size_ = 0;
};

}  // namespace hpfnt
