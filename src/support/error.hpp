// Error hierarchy for the hpfnt library.
//
// The model layer distinguishes conformance violations (a program breaks a
// rule of the language model, e.g. redistributing a non-DYNAMIC array) from
// mapping errors (an index falls outside a domain) and directive errors
// (syntax/semantic problems in the front end). All derive from HpfError so
// callers can catch the whole family.
#pragma once

#include <stdexcept>
#include <string>

namespace hpfnt {

/// Root of the hpfnt exception family.
class HpfError : public std::runtime_error {
 public:
  explicit HpfError(const std::string& what) : std::runtime_error(what) {}
};

/// A rule of the language model was violated (paper §2.4 constraints,
/// DYNAMIC requirements, rank mismatches, skew alignments, ...).
///
/// Carries an optional source location (1-based line/column; 0 = unknown).
/// Core-model code throws without a location; the directive front end
/// (Binder::apply, Interpreter::exec_node) re-attaches the offending node's
/// line on the way out, so script-level callers — and the static analyzer —
/// can always point at the source. `message()` is the raw text without the
/// location prefix `what()` gains once located.
class ConformanceError : public HpfError {
 public:
  explicit ConformanceError(const std::string& what, int line = 0,
                            int column = 0);
  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }
  bool located() const noexcept { return line_ > 0; }
  const std::string& message() const noexcept { return message_; }

 private:
  std::string message_;
  int line_;
  int column_;
};

/// An index or coordinate is outside the domain it was used with.
class MappingError : public HpfError {
 public:
  explicit MappingError(const std::string& what) : HpfError(what) {}
};

/// Lexical, syntactic, or binding problem in a !HPF$ directive or script.
class DirectiveError : public HpfError {
 public:
  DirectiveError(const std::string& what, int line, int column);
  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Internal invariant failure; indicates a bug in hpfnt itself.
class InternalError : public HpfError {
 public:
  explicit InternalError(const std::string& what) : HpfError(what) {}
};

/// Throws InternalError with a uniform message when `cond` is false.
void require(bool cond, const char* message);

}  // namespace hpfnt
