#include "support/error.hpp"

namespace hpfnt {

namespace {
std::string locate(const char* kind, const std::string& what, int line,
                   int column) {
  if (line <= 0) return what;
  return std::string(kind) + " at " + std::to_string(line) + ":" +
         std::to_string(column) + ": " + what;
}
}  // namespace

ConformanceError::ConformanceError(const std::string& what, int line,
                                   int column)
    : HpfError(locate("conformance error", what, line, column)),
      message_(what),
      line_(line),
      column_(column) {}

DirectiveError::DirectiveError(const std::string& what, int line, int column)
    : HpfError(locate("directive error", what, line, column)),
      line_(line),
      column_(column) {}

void require(bool cond, const char* message) {
  if (!cond) throw InternalError(std::string("internal invariant: ") + message);
}

}  // namespace hpfnt
