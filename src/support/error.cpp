#include "support/error.hpp"

namespace hpfnt {

namespace {
std::string locate(const std::string& what, int line, int column) {
  return "directive error at " + std::to_string(line) + ":" +
         std::to_string(column) + ": " + what;
}
}  // namespace

DirectiveError::DirectiveError(const std::string& what, int line, int column)
    : HpfError(locate(what, line, column)), line_(line), column_(column) {}

void require(bool cond, const char* message) {
  if (!cond) throw InternalError(std::string("internal invariant: ") + message);
}

}  // namespace hpfnt
