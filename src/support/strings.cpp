#include "support/strings.hpp"

#include <cctype>

namespace hpfnt {

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

bool iequals(const std::string& s, const std::string& t) {
  if (s.size() != t.size()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(s[i])) !=
        std::toupper(static_cast<unsigned char>(t[i]))) {
      return false;
    }
  }
  return true;
}

std::string subscripted(const std::string& name,
                        const std::vector<std::string>& subs) {
  return name + "(" + join(subs, ", ") + ")";
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run && run % 3 == 0) out += ',';
    out += *it;
    ++run;
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace hpfnt
