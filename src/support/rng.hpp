// Deterministic pseudo-random source for tests, benchmarks and workload
// generators. A fixed algorithm (splitmix64) keeps results reproducible
// across standard library implementations, unlike std::mt19937 distributions.
#pragma once

#include <cstdint>

namespace hpfnt {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value (splitmix64).
  std::uint64_t next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

 private:
  std::uint64_t state_;
};

}  // namespace hpfnt
