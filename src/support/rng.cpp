#include "support/rng.hpp"

namespace hpfnt {

std::uint64_t Rng::next() {
  state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next() % span);
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace hpfnt
