// Small string helpers used across the library (GCC 12 lacks std::format).
#pragma once

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace hpfnt {

/// Appends the raw fixed-width bytes of a trivially copyable value (an
/// integer or a pointer) to `out`. The single encoder behind every binary
/// signature/cache-key builder (plan keys, alignment signatures), so the
/// encodings cannot drift apart.
template <typename T>
void append_raw(std::string& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>,
                "append_raw requires a trivially copyable value");
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

/// 64-bit FNV-1a: the cheap content digest behind the plan-key signatures
/// of table-backed payloads (explicit owner tables, INDIRECT/USER formats).
/// Streamed value by value via fnv1a_mix so callers never materialize a
/// byte buffer; start from fnv1a_basis.
inline constexpr std::uint64_t fnv1a_basis = 1469598103934665603ULL;

inline std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data,
                                 std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

template <typename T>
std::uint64_t fnv1a_mix(std::uint64_t h, T v) {
  static_assert(std::is_trivially_copyable_v<T>,
                "fnv1a_mix requires a trivially copyable value");
  return fnv1a_bytes(h, &v, sizeof v);
}

/// Joins `parts` with `sep` ("a, b, c").
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Uppercases ASCII in place and returns the result (directive keywords are
/// case-insensitive, as in Fortran).
std::string to_upper(std::string s);

/// True if `s` equals `t` ignoring ASCII case.
bool iequals(const std::string& s, const std::string& t);

/// Formats like "name(1:10:2, 3)" given already-rendered subscripts.
std::string subscripted(const std::string& name,
                        const std::vector<std::string>& subs);

/// Renders a byte count with a thousands separator for bench tables.
std::string with_commas(std::uint64_t value);

/// Minimal printf-free concatenation helper: cat("N=", 4, " ok").
template <typename... Parts>
std::string cat(const Parts&... parts) {
  std::ostringstream out;
  (out << ... << parts);
  return out.str();
}

}  // namespace hpfnt
