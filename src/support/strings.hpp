// Small string helpers used across the library (GCC 12 lacks std::format).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace hpfnt {

/// Joins `parts` with `sep` ("a, b, c").
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Uppercases ASCII in place and returns the result (directive keywords are
/// case-insensitive, as in Fortran).
std::string to_upper(std::string s);

/// True if `s` equals `t` ignoring ASCII case.
bool iequals(const std::string& s, const std::string& t);

/// Formats like "name(1:10:2, 3)" given already-rendered subscripts.
std::string subscripted(const std::string& name,
                        const std::vector<std::string>& subs);

/// Renders a byte count with a thousands separator for bench tables.
std::string with_commas(std::uint64_t value);

/// Minimal printf-free concatenation helper: cat("N=", 4, " ok").
template <typename... Parts>
std::string cat(const Parts&... parts) {
  std::ostringstream out;
  (out << ... << parts);
  return out.str();
}

}  // namespace hpfnt
