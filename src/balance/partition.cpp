#include "balance/partition.hpp"

#include <algorithm>
#include <numeric>

#include "support/error.hpp"

namespace hpfnt {

namespace {

double total_weight(const std::vector<double>& weights) {
  return std::accumulate(weights.begin(), weights.end(), 0.0);
}

/// Can `weights` be split into at most `np` contiguous blocks, each of
/// weight <= cap? If yes, fills `bounds` with the NP-1 upper bounds of a
/// witness (greedily packed as full as possible).
bool feasible(const std::vector<double>& weights, Extent np, double cap,
              std::vector<Extent>* bounds) {
  if (bounds) bounds->clear();
  Extent blocks_used = 1;
  double current = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > cap) return false;  // a single element exceeds the cap
    if (current + weights[i] <= cap) {
      current += weights[i];
      continue;
    }
    // Close the current block before index i (1-based bound = i).
    if (bounds) bounds->push_back(static_cast<Extent>(i));
    if (++blocks_used > np) return false;
    current = weights[i];
  }
  if (bounds) {
    // Remaining blocks are empty; pad bounds to NP-1 entries.
    while (static_cast<Extent>(bounds->size()) < np - 1) {
      bounds->push_back(static_cast<Extent>(weights.size()));
    }
  }
  return true;
}

}  // namespace

std::vector<Extent> greedy_partition(const std::vector<double>& weights,
                                     Extent np) {
  if (np < 1) throw ConformanceError("partition needs np >= 1");
  const double target = total_weight(weights) / static_cast<double>(np);
  std::vector<Extent> bounds;
  bounds.reserve(static_cast<std::size_t>(np - 1));
  double current = 0.0;
  Extent blocks_closed = 0;
  for (std::size_t i = 0; i < weights.size() && blocks_closed < np - 1; ++i) {
    current += weights[i];
    // Close the block when reaching the target; prefer closing at the
    // element that brings us nearer the target than leaving it out would.
    if (current >= target) {
      const double overshoot = current - target;
      const double undershoot = target - (current - weights[i]);
      Extent end = static_cast<Extent>(i + 1);
      if (undershoot < overshoot && end > 1 &&
          (bounds.empty() || bounds.back() < end - 1)) {
        end -= 1;  // leave the last element for the next block
      }
      bounds.push_back(end);
      current = end == static_cast<Extent>(i + 1) ? 0.0 : weights[i];
      ++blocks_closed;
    }
  }
  while (static_cast<Extent>(bounds.size()) < np - 1) {
    bounds.push_back(static_cast<Extent>(weights.size()));
  }
  return bounds;
}

std::vector<Extent> optimal_partition(const std::vector<double>& weights,
                                      Extent np) {
  if (np < 1) throw ConformanceError("partition needs np >= 1");
  double lo = 0.0;
  for (double w : weights) lo = std::max(lo, w);
  double hi = total_weight(weights);
  // Parametric search on the bottleneck value: 60 halvings reach machine
  // precision on doubles.
  for (int iter = 0; iter < 60 && hi - lo > 1e-9 * (1.0 + hi); ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (feasible(weights, np, mid, nullptr)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  std::vector<Extent> bounds;
  if (!feasible(weights, np, hi, &bounds)) {
    // hi started at the total, which is always feasible; reaching here
    // means numerical trouble only.
    throw InternalError("optimal_partition lost feasibility");
  }
  return bounds;
}

PartitionQuality evaluate_partition(const std::vector<double>& weights,
                                    const std::vector<Extent>& bounds,
                                    Extent np) {
  PartitionQuality q;
  const double total = total_weight(weights);
  q.mean_load = total / static_cast<double>(np);
  Extent start = 0;
  for (Extent p = 0; p < np; ++p) {
    const Extent end = p + 1 < np ? bounds[static_cast<std::size_t>(p)]
                                  : static_cast<Extent>(weights.size());
    double load = 0.0;
    for (Extent i = start; i < end; ++i) {
      load += weights[static_cast<std::size_t>(i)];
    }
    q.max_load = std::max(q.max_load, load);
    start = end;
  }
  q.imbalance = q.mean_load > 0.0 ? q.max_load / q.mean_load : 1.0;
  return q;
}

PartitionQuality evaluate_mapping(const std::vector<double>& weights,
                                  const DimMapping& mapping) {
  PartitionQuality q;
  const double total = total_weight(weights);
  q.mean_load = total / static_cast<double>(mapping.np());
  for (Index1 p = 1; p <= mapping.np(); ++p) {
    double load = 0.0;
    mapping.for_each_owned(p, [&](Index1 i) {
      load += weights[static_cast<std::size_t>(i - 1)];
    });
    q.max_load = std::max(q.max_load, load);
  }
  q.imbalance = q.mean_load > 0.0 ? q.max_load / q.mean_load : 1.0;
  return q;
}

DistFormat balanced_general_block(const std::vector<double>& weights,
                                  Extent np, bool optimal) {
  return DistFormat::general_block(optimal ? optimal_partition(weights, np)
                                           : greedy_partition(weights, np));
}

}  // namespace hpfnt
