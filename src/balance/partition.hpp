// GENERAL_BLOCK partitioners (paper §1: irregular block distributions "are
// important for the support of load balancing, and can be implemented
// efficiently [13]").
//
// Given per-index work weights, these compute the NP contiguous blocks —
// i.e. the G array of GENERAL_BLOCK(G) — that balance the per-processor
// load:
//   * greedy_partition: single left-to-right pass targeting total/NP per
//     block; O(N).
//   * optimal_partition: minimizes the bottleneck (maximum block weight)
//     exactly, by parametric search over the bottleneck value with a
//     feasibility sweep; O(N log(sum w)).
#pragma once

#include <vector>

#include "core/dist_format.hpp"
#include "core/types.hpp"

namespace hpfnt {

struct PartitionQuality {
  double max_load = 0.0;   // heaviest block
  double mean_load = 0.0;  // total / NP
  double imbalance = 1.0;  // max / mean (1.0 is perfect)
};

/// Greedy contiguous partition of `weights` into `np` blocks. Returns the
/// NP-1 upper bounds forming the G array of GENERAL_BLOCK(G).
std::vector<Extent> greedy_partition(const std::vector<double>& weights,
                                     Extent np);

/// Bottleneck-optimal contiguous partition (minimizes the maximum block
/// weight). Same G-array convention.
std::vector<Extent> optimal_partition(const std::vector<double>& weights,
                                      Extent np);

/// Load statistics of a partition given as GENERAL_BLOCK bounds.
PartitionQuality evaluate_partition(const std::vector<double>& weights,
                                    const std::vector<Extent>& bounds,
                                    Extent np);

/// Load statistics of an arbitrary bound DimMapping (BLOCK, CYCLIC, ...)
/// under the same weights, for comparing formats.
PartitionQuality evaluate_mapping(const std::vector<double>& weights,
                                  const DimMapping& mapping);

/// Convenience: a GENERAL_BLOCK format balanced for `weights`.
DistFormat balanced_general_block(const std::vector<double>& weights,
                                  Extent np, bool optimal = true);

}  // namespace hpfnt
