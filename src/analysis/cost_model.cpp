#include "analysis/cost_model.hpp"

#include <map>
#include <utility>

#include "core/data_env.hpp"
#include "core/layout_view.hpp"
#include "directives/binder.hpp"
#include "directives/parser.hpp"
#include "exec/comm_plan.hpp"
#include "exec/overlap.hpp"
#include "exec/pricing.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace hpfnt::analysis {

namespace {

using dir::AstNode;
using dir::AstProgram;
using dir::Binder;

/// Adapts the storage-free StepPricer to the Engine concept the shared
/// charge walks (exec/pricing.hpp) expect: the walks signal phases via
/// begin_posted/end_posted (the CommEngine protocol), the pricer takes a
/// flag per charge.
struct PricerSink {
  StepPricer* pricer;
  bool posted = false;

  void begin_posted() { posted = true; }
  void end_posted() { posted = false; }
  void transfer_block(ApId src, ApId dst, Extent elem_bytes, Extent count) {
    pricer->transfer_block(src, dst, elem_bytes, count, posted);
  }
  void count_local_reads(Extent n) { pricer->count_local_reads(n); }
  void compute(ApId p, Extent flops) { pricer->compute(p, flops); }
};

std::string render_section(const std::string& name,
                           const std::vector<Triplet>& section) {
  std::string out = name + "(";
  for (std::size_t d = 0; d < section.size(); ++d) {
    if (d) out += ",";
    out += section[d].to_string();
  }
  return out + ")";
}

bool is_mapping_directive(AstNode::Kind kind) {
  switch (kind) {
    case AstNode::Kind::kProcessors:
    case AstNode::Kind::kDistribute:
    case AstNode::Kind::kAlign:
    case AstNode::Kind::kDynamic:
    case AstNode::Kind::kTemplate:
    case AstNode::Kind::kInherit:
    case AstNode::Kind::kShadow:
      return true;
    default:
      return false;
  }
}

class CostModel {
 public:
  CostModel(const Machine& machine, ProcessorSpace& space,
            const AstProgram& program, const CostOptions& options)
      : machine_(&machine),
        program_(&program),
        options_(options),
        env_(space),
        binder_(space, env_) {}

  CostReport run() {
    for (const AstNode& node : program_->main) visit(node);
    report_.plans_priced = static_cast<Extent>(key_ids_.size());
    return std::move(report_);
  }

 private:
  void diag(std::string code, Severity severity, std::string message,
            int line, std::string note = "") {
    Diagnostic d;
    d.code = std::move(code);
    d.severity = severity;
    d.message = std::move(message);
    d.line = line;
    d.note = std::move(note);
    report_.diagnostics.push_back(std::move(d));
  }

  /// Binds one node, converting front-end throws into the same diagnostics
  /// analysis/analyzer.hpp emits (HL003 for mapping directives, HF001 for
  /// statements); the node's effects are skipped on failure. Remap events,
  /// when requested, surface in `events`.
  bool apply(const AstNode& node, std::vector<RemapEvent>* events = nullptr) {
    const char* code = is_mapping_directive(node.kind) ? "HL003" : "HF001";
    try {
      std::vector<RemapEvent> local;
      binder_.apply(node, events ? events : &local);
      return true;
    } catch (const DirectiveError& e) {
      diag(code, Severity::kError, e.what(), e.line());
    } catch (const ConformanceError& e) {
      diag(code, Severity::kError, e.message(),
           e.located() ? e.line() : node.line);
    } catch (const HpfError& e) {
      diag(code, Severity::kError, e.what(), node.line);
    }
    return false;
  }

  void visit(const AstNode& node) {
    switch (node.kind) {
      case AstNode::Kind::kStats:
        return;  // runtime counter snapshot; nothing to price
      case AstNode::Kind::kCall: {
        // Callee effects (argument copies, body statements, restores) are
        // not priced statically; record the gap rather than under-counting
        // silently.
        StatementCost stmt;
        stmt.kind = StatementCost::Kind::kUnmodeled;
        stmt.line = node.line;
        stmt.label = "CALL " + node.call->procedure;
        stmt.text = stmt.label;
        report_.statements.push_back(std::move(stmt));
        ++report_.unmodeled;
        return;
      }
      case AstNode::Kind::kFaults:
      case AstNode::Kind::kCheckpoint:
      case AstNode::Kind::kRestore:
      case AstNode::Kind::kFailProc: {
        // Fault-injection and recovery are data- and RNG-dependent: their
        // cost cannot be predicted from mappings alone. Record the gap.
        StatementCost stmt;
        stmt.kind = StatementCost::Kind::kUnmodeled;
        stmt.line = node.line;
        stmt.label = node.kind == AstNode::Kind::kFaults       ? "FAULTS"
                     : node.kind == AstNode::Kind::kCheckpoint ? "CHECKPOINT"
                     : node.kind == AstNode::Kind::kRestore    ? "RESTORE"
                                                               : "FAIL_PROC";
        stmt.text = stmt.label;
        report_.statements.push_back(std::move(stmt));
        ++report_.unmodeled;
        return;
      }
      case AstNode::Kind::kArrayAssign:
        visit_array_assign(node);
        return;
      case AstNode::Kind::kDistribute:
      case AstNode::Kind::kAlign: {
        const bool executable = node.kind == AstNode::Kind::kDistribute
                                    ? node.distribute->executable
                                    : node.align->executable;
        std::vector<RemapEvent> events;
        if (!apply(node, executable ? &events : nullptr)) return;
        // Each event is one priced step in the executor (apply_remaps);
        // specification-part mappings move nothing and price nothing.
        for (const RemapEvent& e : events) price_remap(node, e);
        return;
      }
      default:
        apply(node);
        return;
    }
  }

  // --- pricing, through the shared executor code ---------------------------

  /// Finishes one priced statement: seals the predicted StepStats from the
  /// pricer (the executor's end_step arithmetic), interns the plan key,
  /// resolves replays, accumulates totals exactly as CommEngine's
  /// cumulative counters do, and emits the HX diagnostics.
  void seal(StatementCost stmt, const StepPricer& pricer) {
    PhaseBreakdown phases;
    stmt.stats = pricer.price(stmt.label, &phases);
    stmt.phases = phases;
    stmt.local_reads = pricer.local_reads();
    stmt.traffic = pricer.traffic();

    auto [it, inserted] = key_ids_.try_emplace(
        stmt.plan_key,
        std::pair<int, int>{static_cast<int>(key_ids_.size()) + 1,
                            static_cast<int>(report_.statements.size())});
    stmt.key_id = it->second.first;
    if (!inserted) {
      stmt.replay_of = it->second.second;
      ++report_.plan_replays;
    }

    CostTotals& t = report_.totals;
    t.messages += stmt.stats.messages;
    t.bytes += stmt.stats.bytes;
    t.element_transfers += stmt.stats.element_transfers;
    t.flops += stmt.stats.flops;
    t.local_reads += stmt.local_reads;
    t.time_us += stmt.stats.time_us;
    t.exposed_comm_us += stmt.stats.exposed_comm_us;
    t.hidden_comm_us += stmt.stats.hidden_comm_us;

    if (stmt.stats.bytes > 0) {
      const PairFlow* heaviest = nullptr;
      for (const PairFlow& f : stmt.traffic) {
        if (!heaviest || f.bytes > heaviest->bytes) heaviest = &f;
      }
      diag("HX001", Severity::kNote,
           cat("statement '", stmt.text, "': predicted ", stmt.stats.bytes,
               " bytes in ", stmt.stats.messages, " messages, ",
               stmt.exposed_us(), "us exposed communication"),
           stmt.line,
           heaviest ? cat("heaviest pair: processor ", heaviest->src, " -> ",
                          heaviest->dst, " (", heaviest->bytes, " bytes, ",
                          heaviest->posted ? "posted" : "sync", ")")
                    : "");
    }
    if (stmt.replay_of >= 0) {
      const StatementCost& first =
          report_.statements[static_cast<std::size_t>(stmt.replay_of)];
      diag("HX002", Severity::kNote,
           cat("statement '", stmt.text, "': plan key #", stmt.key_id,
               " repeats the statement at line ", first.line,
               " — the executor replays the memoized plan instead of "
               "re-pricing"),
           stmt.line);
    }
    report_.statements.push_back(std::move(stmt));
  }

  /// One array-section assignment, priced exactly as exec/assign.cpp
  /// prices it: same conformance gate, same phase classification, same
  /// charge walk, same key builder — with a StepPricer standing in for the
  /// recording CommEngine.
  void visit_array_assign(const AstNode& node) {
    const dir::AstArrayAssign& assign = *node.array_assign;
    dir::BoundArrayAssign bound;
    try {
      bound = binder_.bind_array_assign(assign);
      bound.lhs->domain().validate_section(bound.section);
    } catch (const ConformanceError& e) {
      diag("HF001", Severity::kError, e.message(),
           e.located() ? e.line() : node.line);
      return;
    } catch (const HpfError& e) {
      diag("HF001", Severity::kError, e.what(), node.line);
      return;
    }

    // The executor's conformance gate (assign_impl): shapes match after
    // squeezing unit dimensions, or the statement throws before pricing.
    const std::vector<Extent> lhs_shape = squeezed_shape(
        bound.lhs->domain().section_domain(bound.section).dims());
    try {
      const std::vector<Extent> rhs_shape = bound.rhs.shape();
      if (!rhs_shape.empty() && rhs_shape != lhs_shape) {
        diag("HF002", Severity::kError,
             cat("right-hand side does not conform with target section ",
                 render_section(assign.name, bound.section),
                 " (after squeezing unit dimensions)"),
             node.line);
        return;
      }
    } catch (const ConformanceError& e) {
      diag("HF002", Severity::kError, e.message(),
           e.located() ? e.line() : node.line);
      return;
    }

    const Extent bytes = elem_bytes(bound.lhs->type());
    const Extent flops = bound.rhs.flops_per_element();
    const Distribution& lhs_dist = env_.distribution_of(*bound.lhs);
    const std::vector<SecLeaf>& leaves = bound.rhs.program().leaves();

    // Phase classification through the shared predicate, over the same
    // inputs the executor reads from its ProgramState (layout and shadow
    // track the DataEnv exactly — the interpreter re-creates storage on
    // every mapping/shadow change).
    std::vector<char> posted(leaves.size(), 0);
    if (options_.overlap) {
      for (std::size_t l = 0; l < leaves.size(); ++l) {
        const DistArray& array = env_.array(leaves[l].array);
        posted[l] = classify_operand_comm(lhs_dist, bound.section,
                                          env_.distribution_of(array),
                                          *leaves[l].section,
                                          array.shadow()) ==
                    CommClass::kPosted;
      }
    }

    StatementCost stmt;
    stmt.kind = StatementCost::Kind::kAssign;
    stmt.line = node.line;
    stmt.label = assign.name;  // the step label hpfnt::assign is given
    stmt.text = render_section(assign.name, bound.section) + " = <expr>";
    stmt.posted_leaves = posted;

    std::vector<AssignKeyLeaf> key_leaves;
    key_leaves.reserve(leaves.size());
    for (std::size_t l = 0; l < leaves.size(); ++l) {
      const DistArray& array = env_.array(leaves[l].array);
      key_leaves.push_back({&env_.distribution_of(array),
                            leaves[l].section, leaves[l].bytes,
                            posted[l] != 0, &array.shadow()});
    }
    stmt.plan_key =
        assign_plan_key(lhs_dist, bound.section, bytes, flops, key_leaves);

    const LayoutView lhs_view(lhs_dist, bound.section);
    std::vector<LayoutView> leaf_views;
    std::vector<Extent> leaf_bytes;
    leaf_views.reserve(leaves.size());
    leaf_bytes.reserve(leaves.size());
    for (const SecLeaf& leaf : leaves) {
      leaf_views.emplace_back(env_.distribution_of(env_.array(leaf.array)),
                              *leaf.section);
      leaf_bytes.push_back(leaf.bytes);
    }
    StepPricer pricer(machine_->cost());
    PricerSink sink{&pricer};
    charge_assign_step(lhs_view, leaf_views, leaf_bytes, posted, bytes,
                       flops, sink);
    seal(std::move(stmt), pricer);
  }

  /// One remap event, priced exactly as ProgramState::apply_remap prices
  /// it (the memory deltas are the executor's business; StepStats carries
  /// none).
  void price_remap(const AstNode& node, const RemapEvent& event) {
    const DistArray& array = env_.array(event.dummy);
    if (!event.from.valid() || !event.to.valid()) return;

    StatementCost stmt;
    stmt.kind = StatementCost::Kind::kRemap;
    stmt.line = node.line;
    stmt.label =
        event.reason.empty() ? ("remap " + array.name()) : event.reason;
    stmt.text = stmt.label;

    const Extent bytes = elem_bytes(array.type());
    stmt.plan_key = remap_plan_key(event.from, event.to, bytes);

    const LayoutView from_view = LayoutView::whole(event.from);
    const LayoutView to_view = LayoutView::whole(event.to);
    StepPricer pricer(machine_->cost());
    PricerSink sink{&pricer};
    charge_remap_step(from_view, to_view, bytes, sink,
                      [](ApId, Extent) {});
    seal(std::move(stmt), pricer);
  }

  const Machine* machine_;
  const AstProgram* program_;
  CostOptions options_;
  DataEnv env_;
  Binder binder_;
  CostReport report_;
  // plan key -> (1-based key id, index of the first statement priced
  // under it)
  std::map<std::string, std::pair<int, int>> key_ids_;
};

}  // namespace

CostReport cost_program(const Machine& machine, ProcessorSpace& space,
                        const AstProgram& program,
                        const CostOptions& options) {
  return CostModel(machine, space, program, options).run();
}

CostReport cost_script(const Machine& machine, const std::string& source,
                       const CostOptions& options) {
  dir::AstProgram program;
  try {
    program = dir::parse_program(source);
  } catch (const DirectiveError& e) {
    CostReport report;
    Diagnostic d;
    d.code = "HF000";
    d.severity = Severity::kError;
    d.message = e.what();
    d.line = e.line();
    d.column = e.column();
    report.diagnostics.push_back(std::move(d));
    return report;
  }
  ProcessorSpace space(machine.processors());
  return cost_program(machine, space, program, options);
}

}  // namespace hpfnt::analysis
