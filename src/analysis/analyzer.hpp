// hpflint — the static analyzer over directive scripts.
//
// The paper's central claim is that data mappings are *statically known*:
// a distribution or alignment directive determines ownership — and hence
// the communication every owner-computes statement induces — without
// running the program. This module cashes that claim in: it walks a parsed
// directive program, binds every directive against a DataEnv exactly as
// the interpreter would (mapping bookkeeping only — no ProgramState, no
// storage, no data motion), and classifies every executable statement's
// communication before a single element exists.
//
// The analyzer and the executor share one classification function,
// exec/overlap.hpp::classify_operand_comm — the same predicate that sets
// the PlanTransfer::posted phase bits at plan-record time — so the static
// report and the recorded plan's split-phase partition cannot diverge
// (tests/test_analysis.cpp pins the equality differentially, leaf for
// leaf, against executed scripts).
//
// Diagnostic codes (stable; tests name them individually):
//
//   code    sev      meaning
//   ------  -------  -----------------------------------------------------
//   HF000   error    script does not parse (front-end DirectiveError)
//   HF001   error    statement rejected at bind time (unknown name,
//                    subscripted scalar, bad section, READ, ...)
//   HF002   error    operand shape does not conform with the assignment's
//                    section shape (squeezed-extent mismatch, §2.4)
//   HL001   error    REALIGN/ALIGN of an array with itself (cycle)
//   HL002   error    ALIGN/REALIGN onto a secondary base — the alignment
//                    forest keeps height <= 1; align to the base's primary
//   HL003   error    mapping directive rejected by the binder (rank/extent
//                    misfit, non-DYNAMIC remap, TEMPLATE/INHERIT, ...)
//   HL004   warning  alignee axis mapped onto a collapsed base dimension:
//                    the alignment constrains no locality there
//   HL005   warning  REDISTRIBUTE of a secondary: detaches it from its
//                    base, silently dropping the alignment relation
//   HL006   warning  REDISTRIBUTE to the identical mapping (same_mapping):
//                    a no-op that still pays directive overhead
//   HS001   warning  stencil shift exceeds the declared SHADOW width, so a
//                    transfer that could be a posted halo exchange will be
//                    exposed-sync; fix-it carries the minimal SHADOW
//   HC001   note     operand classified LOCAL (owner reads its own data)
//   HC002   note     operand classified POSTED (halo exchange into shadow,
//                    overlaps interior compute)
//   HC003   note     operand classified SYNC-REMOTE (blocks the statement)
//   HD001   warning  declared SHADOW never covers any statement's
//                    communication (dead ghost cells)
//   HD002   note     array relies on the compiler's implicit distribution
//                    (never named in any mapping directive)
//   HD003   warning  DYNAMIC array is never REDISTRIBUTE/REALIGNed
//   HP001   warning  CALL to a subroutine not defined in the script
//   HP002   error    CALL arity differs from the subroutine's dummy list
//   HX001   note     (hpfcost, analysis/cost_model.hpp) quantified cost of
//                    one statement: predicted bytes/messages and exposed
//                    communication time, with the heaviest processor pair
//   HX002   note     (hpfcost) statement's plan key repeats an earlier
//                    statement's — the executor replays the memoized plan
//
// Severities: errors mean execution would throw; warnings are legal
// programs that almost certainly do not mean what they say; notes are the
// communication classification itself (HC*) and advisory facts. hpflint
// exits nonzero on errors (and on warnings under --werror); notes never
// affect exit status.
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "core/processors.hpp"
#include "directives/ast.hpp"
#include "exec/overlap.hpp"

namespace hpfnt::analysis {

/// The static communication classification of one RHS operand of an
/// array-section assignment, in SecExpr::leaves() order — the same order
/// as AssignResult::posted_leaves, which the differential tests exploit.
struct OperandComm {
  std::string array;     ///< operand array name as declared
  std::string rendered;  ///< e.g. "B(1:8:1)" — bound section rendering
  int line = 0;          ///< reference location in the source
  int column = 0;
  CommClass comm = CommClass::kSync;
};

/// Per-statement classification record for every array-section assignment
/// of the main program, in execution order.
struct StatementComm {
  int line = 0;
  std::string lhs;  ///< target array name
  std::vector<OperandComm> operands;
};

struct AnalysisResult {
  std::vector<Diagnostic> diagnostics;
  std::vector<StatementComm> statements;

  int errors() const { return count_of(diagnostics, Severity::kError); }
  int warnings() const { return count_of(diagnostics, Severity::kWarning); }
};

/// Analyzes a parsed program. Directives are bound (mapping bookkeeping
/// only) so later statements see the mappings earlier directives
/// established; statements are classified, never executed. Subroutine
/// bodies are not analyzed — CALLs are checked for existence and arity
/// (HP001/HP002) only. Never throws for script-level problems: they
/// become diagnostics.
AnalysisResult analyze_program(ProcessorSpace& space,
                               const dir::AstProgram& program);

/// Parses and analyzes a script source. A parse failure yields a single
/// HF000 diagnostic instead of a throw.
AnalysisResult analyze_script(ProcessorSpace& space,
                              const std::string& source);

}  // namespace hpfnt::analysis
