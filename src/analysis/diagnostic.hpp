// Structured diagnostics of the static analyzer (hpflint).
//
// A Diagnostic is one finding about a directive script: an identifying
// code (see the table in analysis/analyzer.hpp), a severity, a 1-based
// source location, the human message, and optionally an amplifying note
// and a machine-applicable fix-it (the replacement directive text — e.g.
// the minimal SHADOW declaration that would turn an exposed-sync transfer
// into a posted halo exchange).
//
// Rendering is deliberately two-faced: to_string() for humans (clang-style
// "line:col: severity: [CODE] message"), to_json_line() for tools (one
// self-contained JSON object per line, no framing — the hpflint --json
// mode CI greps).
#pragma once

#include <string>
#include <vector>

namespace hpfnt::analysis {

enum class Severity {
  kNote,     ///< classification/informational; never affects exit status
  kWarning,  ///< legal but almost certainly not what the author wanted
  kError,    ///< the program violates the model; execution would throw
};

const char* to_string(Severity severity);

struct Diagnostic {
  std::string code;  ///< "HS001" — stable across releases, see analyzer.hpp
  Severity severity = Severity::kNote;
  std::string message;
  int line = 0;    ///< 1-based; 0 = whole-script (e.g. end-of-program checks)
  int column = 0;  ///< 1-based; 0 = whole-line
  std::string note;   ///< optional amplification ("the base's primary is P")
  std::string fixit;  ///< optional replacement directive ("SHADOW B(1:1)")
};

/// "4:7: warning: [HS001] message" plus indented note/fix-it lines.
std::string to_string(const Diagnostic& diagnostic);

/// One JSON object, no trailing newline:
/// {"code":"HS001","severity":"warning","line":4,"column":7,
///  "message":"...","note":"...","fixit":"..."}
/// (note/fixit keys appear only when nonempty).
std::string to_json_line(const Diagnostic& diagnostic);

/// Count by severity.
int count_of(const std::vector<Diagnostic>& diagnostics, Severity severity);

}  // namespace hpfnt::analysis
