// hpfcost — the static communication cost model over directive scripts.
//
// The paper's claim that mappings are statically known has a quantitative
// corollary: since ownership is a pure function of the directives, the
// COMPLETE priced communication schedule of every statement — bytes,
// messages, the per-processor-pair traffic matrix, the posted/sync phase
// split, and the max(compute, posted) + sync time bound — is computable
// before a single element exists. This module cashes that in: it walks a
// parsed program with a Binder/DataEnv exactly as analysis/analyzer.hpp
// does (mapping bookkeeping only, no ProgramState, no storage), and prices
// every assignment and remap through the SAME code the executor runs:
//
//   * the charge walks  — exec/pricing.hpp (charge_assign_step,
//     charge_remap_step), driven here with a storage-free StepPricer sink
//     instead of a recording CommEngine;
//   * the phase rule    — exec/overlap.hpp::classify_operand_comm, the
//     predicate that sets the executor's PlanTransfer::posted bits;
//   * the arithmetic    — machine/step_pricer.hpp::StepPricer::price, the
//     function CommEngine::end_step seals StepStats from;
//   * the plan keys     — exec/comm_plan.hpp::assign_plan_key /
//     remap_plan_key, the builders the executor caches plans under.
//
// Predictions are therefore differential BY CONSTRUCTION: a predicted
// StepStats is byte-for-byte (doubles included — the pricer walks pairs in
// one deterministic order) the StepStats the interpreter's execution of
// the same script seals, and a predicted plan key is the executor's cache
// key, so predicted plan reuse is the PlanCache's observed hit pattern.
// tests/test_cost_model.cpp pins both, statement for statement, over the
// example corpus.
//
// Diagnostics (hpflint --cost surfaces them; see docs/analysis.md):
//
//   HX001   note   statement's predicted communication, quantified: bytes,
//                  messages, exposed time, and the dominant (src,dst) pair
//   HX002   note   statement's plan key repeats an earlier statement's —
//                  the executor will replay that plan, not re-price it
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "core/processors.hpp"
#include "directives/ast.hpp"
#include "machine/comm.hpp"
#include "machine/step_pricer.hpp"
#include "machine/topology.hpp"

namespace hpfnt::analysis {

/// One priced statement of the main program, in execution order — aligned
/// 1:1 with the steps the interpreter prices for the same (CALL-free)
/// script, which is how the differential tests index them.
struct StatementCost {
  enum class Kind {
    kAssign,     ///< array-section assignment (one step)
    kRemap,      ///< one RemapEvent of a REDISTRIBUTE/REALIGN (one step)
    kUnmodeled,  ///< CALL — callee effects are not priced statically
  };

  Kind kind = Kind::kAssign;
  int line = 0;
  std::string label;  ///< the step label the executor will use
  std::string text;   ///< human rendering for the report table

  /// The executor's content cache key (raw signature bytes — render
  /// key_id, not this) and its interning: key_id is 1-based in order of
  /// first appearance; replay_of is the index of the first statement with
  /// the same key, or -1 when this statement prices its plan cold.
  std::string plan_key;
  int key_id = 0;
  int replay_of = -1;

  StepStats stats;           ///< predicted == executed, byte-exact
  PhaseBreakdown phases;     ///< sync/posted/compute decomposition
  Extent local_reads = 0;    ///< owner-resident reads (no message)
  std::vector<PairFlow> traffic;      ///< per-(src,dst) matrix, both phases
  std::vector<char> posted_leaves;    ///< assign only: per-operand phase

  /// Communication the statement cannot hide: the sync phase plus the
  /// posted excess over compute. The cost report ranks by this.
  double exposed_us() const {
    return phases.sync_us + stats.exposed_comm_us;
  }
};

/// Whole-program totals, accumulated exactly as CommEngine's cumulative
/// counters are (so they equal the engine's totals after execution).
struct CostTotals {
  Extent messages = 0;
  Extent bytes = 0;
  Extent element_transfers = 0;
  Extent flops = 0;
  Extent local_reads = 0;
  double time_us = 0.0;
  double exposed_comm_us = 0.0;
  double hidden_comm_us = 0.0;
};

struct CostReport {
  std::vector<Diagnostic> diagnostics;  ///< HX notes + HF/HL bind errors
  std::vector<StatementCost> statements;
  CostTotals totals;
  Extent plans_priced = 0;  ///< distinct keys == the PlanCache's misses
  Extent plan_replays = 0;  ///< repeated keys == the PlanCache's hits
  Extent unmodeled = 0;     ///< CALL statements skipped

  int errors() const { return count_of(diagnostics, Severity::kError); }
};

struct CostOptions {
  /// Mirrors CommEngine::overlap_enabled: off, every operand prices sync
  /// (the oracle baseline), exactly as the executor with overlap disabled.
  bool overlap = true;
};

/// Prices a parsed program against a machine's cost parameters. Directives
/// are bound (mapping bookkeeping only) so later statements see the
/// mappings earlier directives established; nothing executes. Bind
/// failures become HF001/HL003 error diagnostics and the offending
/// statement is skipped, exactly as analysis/analyzer.hpp reports them.
CostReport cost_program(const Machine& machine, ProcessorSpace& space,
                        const dir::AstProgram& program,
                        const CostOptions& options = {});

/// Parses and prices a script source; a parse failure yields one HF000
/// diagnostic. Creates its own ProcessorSpace of machine.processors() —
/// plan keys are content signatures (address-free), so the predicted keys
/// match any execution session over the same script and machine size.
CostReport cost_script(const Machine& machine, const std::string& source,
                       const CostOptions& options = {});

}  // namespace hpfnt::analysis
