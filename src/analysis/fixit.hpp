// hpflint --fix: textual application of the analyzer's HS001 fix-its.
//
// HS001 reports a stencil operand that goes exposed-sync only because the
// declared SHADOW is too narrow, and carries the minimal declaration that
// would post it (analysis/analyzer.hpp renders it per statement,
// aggregated over the statement's leaves). This module turns those
// per-statement suggestions into one edit plan per array:
//
//   * widths are unioned across every HS001 of the script (max per side
//     per dimension), so the single declaration satisfies all statements;
//   * an existing `!HPF$ SHADOW <array>(...)` line is REPLACED in place;
//   * otherwise the directive is INSERTED after the array's last
//     specification-part mapping directive (DISTRIBUTE/ALIGN), falling
//     back to its declaration line — before any executable statement
//     reads it.
//
// Application is idempotent: the fixed source re-analyzes with no HS001,
// so a second plan is empty and apply_fixes returns the input unchanged
// (tests/test_cost_model.cpp pins this, and pins that the fixed script's
// predicted communication goes posted).
#pragma once

#include <string>
#include <vector>

#include "core/array.hpp"
#include "core/processors.hpp"

namespace hpfnt::analysis {

/// One array's planned SHADOW edit.
struct ShadowFix {
  std::string array;                ///< name as declared in the script
  std::vector<ShadowWidth> widths;  ///< unioned minimal widths
  std::string directive;            ///< the full "!HPF$ SHADOW ..." line
  int replace_line = 0;  ///< 1-based line of an existing SHADOW to replace
  int insert_after = 0;  ///< used when replace_line == 0: insert after this
};

struct FixPlan {
  std::vector<ShadowFix> fixes;
  bool empty() const { return fixes.empty(); }
};

/// Analyzes `source` and plans the minimal SHADOW edits its HS001
/// diagnostics call for. An unparseable or fix-free script yields an
/// empty plan.
FixPlan plan_shadow_fixes(ProcessorSpace& space, const std::string& source);

/// Applies a plan textually, preserving every untouched line (and the
/// final newline convention of the input). Safe to call with an empty
/// plan (returns the input).
std::string apply_fixes(const std::string& source, const FixPlan& plan);

}  // namespace hpfnt::analysis
