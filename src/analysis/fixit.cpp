#include "analysis/fixit.hpp"

#include <algorithm>
#include <map>

#include "analysis/analyzer.hpp"
#include "directives/ast.hpp"
#include "directives/parser.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace hpfnt::analysis {

namespace {

/// Parses one analyzer fix-it, "SHADOW <name>(<l>:<r>[,<l>:<r>...])", back
/// into its parts. The renderer (analysis/analyzer.cpp,
/// render_shadow_fixit) is the only producer, so the grammar is exact;
/// anything else is ignored.
bool parse_fixit(const std::string& fixit, std::string* name,
                 std::vector<ShadowWidth>* widths) {
  const std::string prefix = "SHADOW ";
  if (fixit.rfind(prefix, 0) != 0) return false;
  const std::size_t open = fixit.find('(', prefix.size());
  if (open == std::string::npos || fixit.back() != ')') return false;
  *name = fixit.substr(prefix.size(), open - prefix.size());
  widths->clear();
  std::size_t at = open + 1;
  while (at < fixit.size() - 1) {
    std::size_t end = fixit.find(',', at);
    if (end == std::string::npos || end > fixit.size() - 1) {
      end = fixit.size() - 1;
    }
    const std::string dim = fixit.substr(at, end - at);
    const std::size_t colon = dim.find(':');
    if (colon == std::string::npos) return false;
    ShadowWidth w;
    w.left = static_cast<Extent>(std::stoll(dim.substr(0, colon)));
    w.right = static_cast<Extent>(std::stoll(dim.substr(colon + 1)));
    widths->push_back(w);
    at = end + 1;
  }
  return !widths->empty();
}

std::string render_directive(const std::string& name,
                             const std::vector<ShadowWidth>& widths) {
  std::string out = "!HPF$ SHADOW " + name + "(";
  for (std::size_t d = 0; d < widths.size(); ++d) {
    if (d) out += ",";
    out += cat(widths[d].left, ":", widths[d].right);
  }
  return out + ")";
}

}  // namespace

FixPlan plan_shadow_fixes(ProcessorSpace& space, const std::string& source) {
  FixPlan plan;
  dir::AstProgram program;
  try {
    program = dir::parse_program(source);
  } catch (const HpfError&) {
    return plan;  // unparseable: nothing to fix textually
  }

  // Union the widths every HS001 asks for, per array (max per side per
  // dimension): one declaration must satisfy every statement at once.
  const AnalysisResult result = analyze_program(space, program);
  std::map<std::string, std::pair<std::string, std::vector<ShadowWidth>>>
      needed;  // case-folded name -> (name as rendered, widths)
  for (const Diagnostic& d : result.diagnostics) {
    if (d.code != "HS001" || d.fixit.empty()) continue;
    std::string name;
    std::vector<ShadowWidth> widths;
    if (!parse_fixit(d.fixit, &name, &widths)) continue;
    auto& entry = needed[to_upper(name)];
    if (entry.second.empty()) {
      entry = {name, widths};
      continue;
    }
    for (std::size_t i = 0; i < entry.second.size() && i < widths.size();
         ++i) {
      entry.second[i].left = std::max(entry.second[i].left, widths[i].left);
      entry.second[i].right =
          std::max(entry.second[i].right, widths[i].right);
    }
  }
  if (needed.empty()) return plan;

  // Anchor lines per array: an existing SHADOW line to replace, else the
  // last specification-part mapping directive (then the declaration) to
  // insert after.
  std::map<std::string, int> shadow_line;
  std::map<std::string, int> anchor_line;
  auto anchor = [&](const std::string& name, int line) {
    int& at = anchor_line[to_upper(name)];
    at = std::max(at, line);
  };
  for (const dir::AstNode& node : program.main) {
    switch (node.kind) {
      case dir::AstNode::Kind::kShadow:
        shadow_line[to_upper(node.shadow->name)] = node.line;
        break;
      case dir::AstNode::Kind::kDeclaration:
        for (const dir::AstDeclName& n : node.declaration->names) {
          anchor(n.name, node.line);
        }
        break;
      case dir::AstNode::Kind::kDistribute:
        if (!node.distribute->executable) {
          for (const std::string& n : node.distribute->names) {
            anchor(n, node.line);
          }
        }
        break;
      case dir::AstNode::Kind::kAlign:
        if (!node.align->executable) anchor(node.align->alignee, node.line);
        break;
      default:
        break;
    }
  }

  for (auto& [key, entry] : needed) {
    ShadowFix fix;
    fix.array = entry.first;
    fix.widths = entry.second;
    fix.directive = render_directive(entry.first, entry.second);
    auto existing = shadow_line.find(key);
    if (existing != shadow_line.end()) {
      fix.replace_line = existing->second;
    } else {
      auto at = anchor_line.find(key);
      if (at == anchor_line.end()) continue;  // never declared: no anchor
      fix.insert_after = at->second;
    }
    plan.fixes.push_back(std::move(fix));
  }
  return plan;
}

std::string apply_fixes(const std::string& source, const FixPlan& plan) {
  if (plan.empty()) return source;
  std::vector<std::string> lines;
  std::size_t at = 0;
  while (at <= source.size()) {
    const std::size_t end = source.find('\n', at);
    if (end == std::string::npos) {
      if (at < source.size()) lines.push_back(source.substr(at));
      break;
    }
    lines.push_back(source.substr(at, end - at));
    at = end + 1;
  }
  const bool final_newline = !source.empty() && source.back() == '\n';

  for (const ShadowFix& fix : plan.fixes) {
    if (fix.replace_line >= 1 &&
        fix.replace_line <= static_cast<int>(lines.size())) {
      lines[static_cast<std::size_t>(fix.replace_line - 1)] = fix.directive;
    }
  }
  // Inserts from the bottom up, so earlier insertion points stay valid;
  // same-line inserts run in reverse plan order so the final text keeps
  // the plan's (name-sorted) order.
  std::vector<const ShadowFix*> inserts;
  for (const ShadowFix& fix : plan.fixes) {
    if (fix.replace_line == 0) inserts.push_back(&fix);
  }
  std::reverse(inserts.begin(), inserts.end());
  std::stable_sort(inserts.begin(), inserts.end(),
                   [](const ShadowFix* a, const ShadowFix* b) {
                     return a->insert_after > b->insert_after;
                   });
  for (const ShadowFix* fix : inserts) {
    const std::size_t pos = std::min(lines.size(),
                                     static_cast<std::size_t>(
                                         std::max(0, fix->insert_after)));
    lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(pos),
                 fix->directive);
  }

  std::string out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out += lines[i];
    if (i + 1 < lines.size() || final_newline) out += '\n';
  }
  return out;
}

}  // namespace hpfnt::analysis
