#include "analysis/diagnostic.hpp"

#include "support/strings.hpp"

namespace hpfnt::analysis {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string to_string(const Diagnostic& d) {
  std::string out;
  if (d.line > 0) {
    out += cat(d.line, ":");
    if (d.column > 0) out += cat(d.column, ":");
    out += " ";
  }
  out += cat(to_string(d.severity), ": [", d.code, "] ", d.message);
  if (!d.note.empty()) out += "\n    note: " + d.note;
  if (!d.fixit.empty()) out += "\n    fix-it: " + d.fixit;
  return out;
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string to_json_line(const Diagnostic& d) {
  std::string out = "{\"code\":";
  append_json_string(out, d.code);
  out += ",\"severity\":";
  append_json_string(out, to_string(d.severity));
  out += cat(",\"line\":", d.line, ",\"column\":", d.column, ",\"message\":");
  append_json_string(out, d.message);
  if (!d.note.empty()) {
    out += ",\"note\":";
    append_json_string(out, d.note);
  }
  if (!d.fixit.empty()) {
    out += ",\"fixit\":";
    append_json_string(out, d.fixit);
  }
  out += "}";
  return out;
}

int count_of(const std::vector<Diagnostic>& diagnostics, Severity severity) {
  int n = 0;
  for (const Diagnostic& d : diagnostics) n += (d.severity == severity);
  return n;
}

}  // namespace hpfnt::analysis
