#include "analysis/analyzer.hpp"

#include <map>
#include <set>
#include <utility>

#include "core/data_env.hpp"
#include "core/distribution.hpp"
#include "directives/binder.hpp"
#include "directives/parser.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace hpfnt::analysis {

namespace {

using dir::AstNode;
using dir::AstProgram;
using dir::AstSecExpr;
using dir::AstSecExprPtr;
using dir::Binder;

bool is_mapping_directive(AstNode::Kind kind) {
  switch (kind) {
    case AstNode::Kind::kProcessors:
    case AstNode::Kind::kDistribute:
    case AstNode::Kind::kAlign:
    case AstNode::Kind::kDynamic:
    case AstNode::Kind::kTemplate:
    case AstNode::Kind::kInherit:
    case AstNode::Kind::kShadow:
      return true;
    default:
      return false;
  }
}

/// Array references of an expression tree in left-to-right depth-first
/// order — the order bind_sec_expr emits section leaves, hence the order
/// of SecExpr::leaves() (scalar names become folded constants, not
/// leaves, so they are skipped here under the identical condition).
void collect_array_refs(const AstSecExprPtr& expr, const DataEnv& env,
                        std::vector<const AstSecExpr*>* out) {
  if (!expr) return;
  if (expr->kind == AstSecExpr::Kind::kRef) {
    if (env.has(expr->name) && env.find(expr->name).rank() >= 1) {
      out->push_back(expr.get());
    }
    return;
  }
  collect_array_refs(expr->lhs, env, out);
  collect_array_refs(expr->rhs, env, out);
}

std::string render_section(const std::string& name,
                           const std::vector<Triplet>& section) {
  std::string out = name + "(";
  for (std::size_t d = 0; d < section.size(); ++d) {
    if (d) out += ",";
    out += section[d].to_string();
  }
  return out + ")";
}

std::string render_shadow_fixit(const std::string& name,
                                const std::vector<ShadowWidth>& widths) {
  std::string out = "SHADOW " + name + "(";
  for (std::size_t d = 0; d < widths.size(); ++d) {
    if (d) out += ",";
    out += cat(widths[d].left, ":", widths[d].right);
  }
  return out + ")";
}

class Analyzer {
 public:
  Analyzer(ProcessorSpace& space, const AstProgram& program)
      : program_(&program), env_(space), binder_(space, env_) {
    for (const dir::AstSubroutine& sub : program.subroutines) {
      arity_[to_upper(sub.name)] = static_cast<int>(sub.dummies.size());
    }
  }

  AnalysisResult run() {
    for (const AstNode& node : program_->main) visit(node);
    finish();
    return std::move(result_);
  }

 private:
  void diag(std::string code, Severity severity, std::string message,
            int line, int column = 0, std::string note = "",
            std::string fixit = "") {
    Diagnostic d;
    d.code = std::move(code);
    d.severity = severity;
    d.message = std::move(message);
    d.line = line;
    d.column = column;
    d.note = std::move(note);
    d.fixit = std::move(fixit);
    result_.diagnostics.push_back(std::move(d));
  }

  void visit(const AstNode& node) {
    switch (node.kind) {
      case AstNode::Kind::kStats:
        return;  // runtime counter snapshot; nothing static to say
      case AstNode::Kind::kFaults:
      case AstNode::Kind::kCheckpoint:
      case AstNode::Kind::kRestore:
      case AstNode::Kind::kFailProc:
        return;  // fault-injection controls; runtime-only, nothing static
      case AstNode::Kind::kCall:
        visit_call(node);
        return;
      case AstNode::Kind::kArrayAssign:
        visit_array_assign(node);
        return;
      case AstNode::Kind::kAlign:
        visit_align(node);
        return;
      case AstNode::Kind::kDistribute:
        visit_distribute(node);
        return;
      default:
        if (node.kind == AstNode::Kind::kDeclaration) {
          for (const dir::AstDeclName& n : node.declaration->names) {
            decl_line_.emplace(to_upper(n.name), node.line);
          }
        }
        if (node.kind == AstNode::Kind::kDynamic) {
          for (const std::string& n : node.dynamic->names) {
            dynamic_line_.emplace(to_upper(n), node.line);
          }
        }
        if (node.kind == AstNode::Kind::kShadow) {
          shadow_line_[to_upper(node.shadow->name)] = node.line;
        }
        apply(node);
        return;
    }
  }

  /// Binds one node, converting front-end throws into diagnostics: HL003
  /// for mapping directives, HF001 for statements. Returns false when the
  /// node did not bind (its effects are skipped; analysis continues).
  bool apply(const AstNode& node) {
    const char* code =
        is_mapping_directive(node.kind) ? "HL003" : "HF001";
    try {
      std::vector<RemapEvent> events;
      binder_.apply(node, &events);
      return true;
    } catch (const DirectiveError& e) {
      diag(code, Severity::kError, e.what(), e.line(), e.column());
    } catch (const ConformanceError& e) {
      diag(code, Severity::kError, e.message(),
           e.located() ? e.line() : node.line, e.column());
    } catch (const HpfError& e) {
      diag(code, Severity::kError, e.what(), node.line);
    }
    return false;
  }

  // --- ALIGN / REALIGN -----------------------------------------------------

  void visit_align(const AstNode& node) {
    const dir::AstAlign& align = *node.align;
    mapped_.insert(to_upper(align.alignee));
    if (align.executable) remapped_.insert(to_upper(align.alignee));

    // HL001: a self-alignment can never be satisfied — the directive asks
    // the forest for a cycle of length one.
    if (iequals(align.alignee, align.base)) {
      diag("HL001", Severity::kError,
           cat(align.executable ? "REALIGN" : "ALIGN", " of '", align.alignee,
               "' with itself forms an alignment cycle"),
           node.line);
      return;
    }

    // HL002: the alignment forest keeps height <= 1, so the base must be a
    // primary. The one legal exception: REALIGN A WITH B where B is
    // currently aligned to A — realignment orphans A's tree first (§5.2),
    // which turns B into a primary before the edge is re-made.
    if (env_.has(align.alignee) && env_.has(align.base)) {
      const DistArray& alignee = env_.find(align.alignee);
      const DistArray& base = env_.find(align.base);
      if (alignee.is_created() && base.is_created() &&
          !env_.is_primary(base)) {
        const DistArray* primary = env_.aligned_to(base);
        const bool orphaned_first =
            align.executable && primary == &alignee;
        if (!orphaned_first) {
          diag("HL002", Severity::kError,
               cat(align.executable ? "REALIGN" : "ALIGN", " of '",
                   align.alignee, "' onto '", align.base,
                   "', which is itself a secondary — the alignment forest "
                   "keeps height <= 1"),
               node.line, 0,
               primary ? cat("'", align.base, "' is aligned to '",
                             primary->name(), "'; align to that primary "
                             "instead")
                       : "");
          return;
        }
      }
    }

    if (!apply(node)) return;

    // HL004: the directive bound, but any alignee axis that lands on a
    // collapsed base dimension constrains nothing — the base's owners do
    // not vary along that dimension.
    if (!env_.has(align.base)) return;
    const DistArray& base = env_.find(align.base);
    if (!base.is_created()) return;
    const Distribution& bdist = env_.distribution_of(base);
    if (bdist.kind() != Distribution::Kind::kFormats) return;
    const AlignSpec spec = binder_.bind_align_spec(align, base.domain());
    const std::vector<BaseSub>& subs = spec.base_subs();
    for (std::size_t j = 0; j < subs.size(); ++j) {
      const BaseSub& sub = subs[j];
      const bool maps_axis =
          sub.kind == BaseSub::Kind::kColon ||
          sub.kind == BaseSub::Kind::kTriplet ||
          (sub.kind == BaseSub::Kind::kExpr && sub.expr.used_dummy());
      if (!maps_axis) continue;
      if (bdist.dim_mapping(static_cast<int>(j)).kind() !=
          FormatKind::kCollapsed) {
        continue;
      }
      diag("HL004", Severity::kWarning,
           cat("alignee axis mapped onto dimension ", j + 1, " of '",
               align.base,
               "', which is collapsed: the alignment constrains no "
               "locality there"),
           node.line);
    }
  }

  // --- DISTRIBUTE / REDISTRIBUTE -------------------------------------------

  void visit_distribute(const AstNode& node) {
    const dir::AstDistribute& dist = *node.distribute;
    for (const std::string& n : dist.names) mapped_.insert(to_upper(n));
    if (dist.executable) {
      for (const std::string& n : dist.names) remapped_.insert(to_upper(n));
    }

    std::map<std::string, Distribution> before;
    if (dist.executable) {
      for (const std::string& n : dist.names) {
        if (!env_.has(n)) continue;
        const DistArray& array = env_.find(n);
        if (!array.is_created()) continue;
        // HL005: redistributing a secondary silently detaches it from its
        // base (§4.2 moves alignees WITH their primary; naming the
        // secondary itself instead dissolves the relation).
        if (!env_.is_primary(array)) {
          const DistArray* primary = env_.aligned_to(array);
          diag("HL005", Severity::kWarning,
               cat("REDISTRIBUTE of '", n,
                   "', which is aligned to another array: this detaches "
                   "it, silently dropping the alignment"),
               node.line, 0,
               primary ? cat("REDISTRIBUTE '", primary->name(),
                             "' to move the whole alignment tree, or "
                             "REALIGN '", n, "' if detaching is intended")
                       : "");
        }
        before.emplace(to_upper(n), env_.distribution_of(array));
      }
    }

    if (!apply(node)) return;

    // HL006: a remap to the mapping the array already has moves nothing
    // but still costs a directive (and, executed, a plan lookup).
    for (const std::string& n : dist.names) {
      auto it = before.find(to_upper(n));
      if (it == before.end() || !env_.has(n)) continue;
      const DistArray& array = env_.find(n);
      if (!array.is_created()) continue;
      if (it->second.same_mapping(env_.distribution_of(array))) {
        diag("HL006", Severity::kWarning,
             cat("REDISTRIBUTE of '", n,
                 "' to its identical current mapping is a no-op"),
             node.line);
      }
    }
  }

  // --- CALL ----------------------------------------------------------------

  void visit_call(const AstNode& node) {
    const dir::AstCall& call = *node.call;
    auto it = arity_.find(to_upper(call.procedure));
    if (it == arity_.end()) {
      diag("HP001", Severity::kWarning,
           cat("CALL to '", call.procedure,
               "', which this script does not define: its mapping effects "
               "are invisible to static analysis"),
           node.line);
      return;
    }
    if (static_cast<int>(call.args.size()) != it->second) {
      diag("HP002", Severity::kError,
           cat("CALL '", call.procedure, "' passes ", call.args.size(),
               " arguments; the subroutine declares ", it->second,
               " dummies"),
           node.line);
    }
  }

  // --- array-section assignment --------------------------------------------

  void visit_array_assign(const AstNode& node) {
    const dir::AstArrayAssign& assign = *node.array_assign;
    dir::BoundArrayAssign bound;
    try {
      bound = binder_.bind_array_assign(assign);
    } catch (const ConformanceError& e) {
      diag("HF001", Severity::kError, e.message(),
           e.located() ? e.line() : node.line, e.column());
      return;
    } catch (const HpfError& e) {
      diag("HF001", Severity::kError, e.what(), node.line);
      return;
    }

    // HF002: the RHS must conform with the target section (§2.4 shapes
    // with unit dimensions squeezed; scalar-shaped operands broadcast).
    const std::vector<Extent> lhs_shape = squeezed_shape(bound.section);
    try {
      const std::vector<Extent> rhs_shape = bound.rhs.shape();
      if (!rhs_shape.empty() && rhs_shape != lhs_shape) {
        diag("HF002", Severity::kError,
             cat("right-hand side of shape ", shape_string(rhs_shape),
                 " does not conform with target section ",
                 render_section(assign.name, bound.section), " of shape ",
                 shape_string(lhs_shape)),
             node.line, assign.column);
        return;
      }
    } catch (const ConformanceError& e) {
      diag("HF002", Severity::kError, e.message(),
           e.located() ? e.line() : node.line, e.column());
      return;
    }

    std::vector<const AstSecExpr*> refs;
    collect_array_refs(assign.rhs, env_, &refs);
    const std::vector<SecLeaf> leaves = bound.rhs.leaves();
    const Distribution& lhs_dist = env_.distribution_of(*bound.lhs);

    // The minimal SHADOW per operand array that would post every pure-shift
    // leaf of THIS statement — the fix-it must satisfy all of an array's
    // leaves at once (U(i-1)+U(i+1) needs SHADOW U(1:1), not two one-sided
    // declarations that each leave the other leaf exposed-sync).
    std::map<std::string, std::vector<ShadowWidth>> stmt_needed;
    for (const SecLeaf& leaf : leaves) {
      const DistArray& array = env_.array(leaf.array);
      accumulate_requirement(array, lhs_dist, bound.section, *leaf.section,
                             &stmt_needed);
    }

    StatementComm stmt;
    stmt.line = node.line;
    stmt.lhs = bound.lhs->name();
    for (std::size_t l = 0; l < leaves.size(); ++l) {
      const SecLeaf& leaf = leaves[l];
      const DistArray& array = env_.array(leaf.array);
      const int line = l < refs.size() ? refs[l]->line : node.line;
      const int column = l < refs.size() ? refs[l]->column : 0;
      const CommClass comm =
          classify_operand_comm(lhs_dist, bound.section,
                                env_.distribution_of(array), *leaf.section,
                                array.shadow());
      OperandComm op;
      op.array = array.name();
      op.rendered = render_section(array.name(), *leaf.section);
      op.line = line;
      op.column = column;
      op.comm = comm;

      switch (comm) {
        case CommClass::kLocal:
          diag("HC001", Severity::kNote,
               cat("operand ", op.rendered,
                   ": LOCAL — every read is owner-resident"),
               line, column);
          break;
        case CommClass::kPosted:
          diag("HC002", Severity::kNote,
               cat("operand ", op.rendered,
                   ": POSTED — halo exchange into declared shadow, "
                   "overlapped with interior compute"),
               line, column);
          note_shadow_use(array, bound.section, *leaf.section);
          break;
        case CommClass::kSync:
          diag("HC003", Severity::kNote,
               cat("operand ", op.rendered,
                   ": SYNC-REMOTE — remote reads outside ghost cells "
                   "block the statement"),
               line, column);
          check_shadow_shortfall(array, lhs_dist, bound.section,
                                 *leaf.section, stmt_needed, line, column);
          break;
      }
      stmt.operands.push_back(std::move(op));
    }
    result_.statements.push_back(std::move(stmt));
  }

  /// A posted operand whose shift crosses a distributed dimension really
  /// lands in the array's ghost cells — its SHADOW is live, not dead.
  void note_shadow_use(const DistArray& array,
                       const std::vector<Triplet>& lhs_section,
                       const std::vector<Triplet>& leaf_section) {
    const std::optional<std::vector<Extent>> shifts =
        section_shift(lhs_section, leaf_section);
    if (!shifts) return;
    const Distribution& dist = env_.distribution_of(array);
    if (dist.kind() != Distribution::Kind::kFormats) return;
    for (std::size_t d = 0; d < shifts->size(); ++d) {
      if ((*shifts)[d] == 0) continue;
      if (dist.dim_mapping(static_cast<int>(d)).kind() !=
          FormatKind::kCollapsed) {
        shadow_used_.insert(to_upper(array.name()));
        return;
      }
    }
  }

  /// If this leaf is a pure per-dimension shift of the target section on a
  /// structurally identical mapping whose shifted dimensions are all
  /// collapsed or contiguous — i.e. the one shape a SHADOW declaration can
  /// post — folds its width requirement (declared ∪ |shift| per side) into
  /// `needed` under the array's case-folded name.
  void accumulate_requirement(
      const DistArray& array, const Distribution& lhs_dist,
      const std::vector<Triplet>& lhs_section,
      const std::vector<Triplet>& leaf_section,
      std::map<std::string, std::vector<ShadowWidth>>* needed) {
    const std::optional<std::vector<Extent>> shifts =
        section_shift(lhs_section, leaf_section);
    if (!shifts) return;
    bool shifted = false;
    for (Extent s : *shifts) shifted |= (s != 0);
    if (!shifted) return;
    const Distribution& dist = env_.distribution_of(array);
    if (lhs_dist.kind() != Distribution::Kind::kFormats ||
        dist.kind() != Distribution::Kind::kFormats ||
        !lhs_dist.structurally_equal(dist)) {
      return;
    }
    for (std::size_t d = 0; d < shifts->size(); ++d) {
      if ((*shifts)[d] == 0) continue;
      const DimMapping& m = dist.dim_mapping(static_cast<int>(d));
      if (m.kind() == FormatKind::kCollapsed) continue;
      if (!m.is_contiguous()) return;  // no shadow can post this leaf
    }
    std::vector<ShadowWidth>& widths = (*needed)[to_upper(array.name())];
    if (widths.empty()) {
      widths.resize(static_cast<std::size_t>(array.rank()));
      const std::vector<ShadowWidth>& declared = array.shadow();
      for (std::size_t d = 0; d < widths.size() && d < declared.size(); ++d) {
        widths[d] = declared[d];
      }
    }
    for (std::size_t d = 0; d < shifts->size() && d < widths.size(); ++d) {
      const Extent shift = (*shifts)[d];
      if (shift > 0) {
        widths[d].right = std::max(widths[d].right, shift);
      } else if (shift < 0) {
        widths[d].left = std::max(widths[d].left, -shift);
      }
    }
  }

  /// HS001: the operand went SYNC for want of shadow alone — a pure shift
  /// on the right mapping whose declared widths are just too narrow. The
  /// fix-it is the minimal SHADOW declaration that posts every such leaf
  /// of the statement (from `stmt_needed`, see visit_array_assign).
  void check_shadow_shortfall(
      const DistArray& array, const Distribution& lhs_dist,
      const std::vector<Triplet>& lhs_section,
      const std::vector<Triplet>& leaf_section,
      const std::map<std::string, std::vector<ShadowWidth>>& stmt_needed,
      int line, int column) {
    const std::optional<std::vector<Extent>> shifts =
        section_shift(lhs_section, leaf_section);
    if (!shifts) return;
    bool shifted = false;
    for (Extent s : *shifts) shifted |= (s != 0);
    if (!shifted) return;
    const Distribution& dist = env_.distribution_of(array);
    if (lhs_dist.kind() != Distribution::Kind::kFormats ||
        dist.kind() != Distribution::Kind::kFormats ||
        !lhs_dist.structurally_equal(dist)) {
      return;
    }
    const std::vector<ShadowWidth>& declared = array.shadow();
    std::string shortfall;
    for (std::size_t d = 0; d < shifts->size(); ++d) {
      const Extent shift = (*shifts)[d];
      if (shift == 0) continue;
      const DimMapping& m = dist.dim_mapping(static_cast<int>(d));
      if (m.kind() == FormatKind::kCollapsed) continue;
      if (!m.is_contiguous()) return;  // no shadow can post this one
      const Extent left = d < declared.size() ? declared[d].left : 0;
      const Extent right = d < declared.size() ? declared[d].right : 0;
      if (shift > 0 && right < shift) {
        shortfall += cat(shortfall.empty() ? "" : "; ", "shift ", shift,
                         " > shadow ", right, " on dimension ", d + 1);
      } else if (shift < 0 && left < -shift) {
        shortfall += cat(shortfall.empty() ? "" : "; ", "shift ", shift,
                         " > shadow ", left, " on dimension ", d + 1);
      }
    }
    if (shortfall.empty()) return;
    auto it = stmt_needed.find(to_upper(array.name()));
    diag("HS001", Severity::kWarning,
         cat("operand ", render_section(array.name(), leaf_section), ": ",
             shortfall, ": this transfer will be exposed-sync"),
         line, column,
         "a pure stencil shift on an identical mapping posts as a halo "
         "exchange once the declared shadow covers it",
         it != stmt_needed.end()
             ? render_shadow_fixit(array.name(), it->second)
             : "");
  }

  // --- end-of-program (dead-directive) checks ------------------------------

  void finish() {
    for (const std::string& name : env_.array_names()) {
      const DistArray& array = env_.find(name);
      if (array.rank() < 1) continue;
      const std::string key = to_upper(name);
      if (array.has_shadow() && !shadow_used_.count(key)) {
        auto it = shadow_line_.find(key);
        diag("HD001", Severity::kWarning,
             cat("SHADOW of '", name,
                 "' never covers any statement's communication: dead "
                 "ghost cells"),
             it != shadow_line_.end() ? it->second : 0);
      }
      if (!mapped_.count(key)) {
        auto it = decl_line_.find(key);
        diag("HD002", Severity::kNote,
             cat("'", name,
                 "' is never named in a mapping directive; it relies on "
                 "the compiler's implicit distribution"),
             it != decl_line_.end() ? it->second : 0);
      }
      auto dyn = dynamic_line_.find(key);
      if (dyn != dynamic_line_.end() && !remapped_.count(key)) {
        diag("HD003", Severity::kWarning,
             cat("'", name,
                 "' is DYNAMIC but never REDISTRIBUTE/REALIGNed; the "
                 "attribute buys only overhead"),
             dyn->second);
      }
    }
  }

  static std::string shape_string(const std::vector<Extent>& shape) {
    std::string out = "(";
    for (std::size_t d = 0; d < shape.size(); ++d) {
      if (d) out += "x";
      out += cat(shape[d]);
    }
    return out + ")";
  }

  const AstProgram* program_;
  DataEnv env_;
  Binder binder_;
  AnalysisResult result_;
  std::map<std::string, int> arity_;         // subroutine -> dummy count
  std::map<std::string, int> decl_line_;     // case-folded name -> line
  std::map<std::string, int> dynamic_line_;  // DYNAMIC directive line
  std::map<std::string, int> shadow_line_;   // SHADOW directive line
  std::set<std::string> mapped_;       // named in any mapping directive
  std::set<std::string> remapped_;     // named in an executable remap
  std::set<std::string> shadow_used_;  // shadow covered a posted operand
};

}  // namespace

AnalysisResult analyze_program(ProcessorSpace& space,
                               const AstProgram& program) {
  return Analyzer(space, program).run();
}

AnalysisResult analyze_script(ProcessorSpace& space,
                              const std::string& source) {
  AstProgram program;
  try {
    program = dir::parse_program(source);
  } catch (const DirectiveError& e) {
    AnalysisResult result;
    Diagnostic d;
    d.code = "HF000";
    d.severity = Severity::kError;
    d.message = e.what();
    d.line = e.line();
    d.column = e.column();
    result.diagnostics.push_back(std::move(d));
    return result;
  }
  return analyze_program(space, program);
}

}  // namespace hpfnt::analysis
