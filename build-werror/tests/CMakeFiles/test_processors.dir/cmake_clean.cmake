file(REMOVE_RECURSE
  "CMakeFiles/test_processors.dir/test_processors.cpp.o"
  "CMakeFiles/test_processors.dir/test_processors.cpp.o.d"
  "test_processors"
  "test_processors.pdb"
  "test_processors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_processors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
