# Empty compiler generated dependencies file for test_dist_format_properties.
# This may be replaced when dependencies are built.
