file(REMOVE_RECURSE
  "CMakeFiles/test_dist_format_properties.dir/test_dist_format_properties.cpp.o"
  "CMakeFiles/test_dist_format_properties.dir/test_dist_format_properties.cpp.o.d"
  "test_dist_format_properties"
  "test_dist_format_properties.pdb"
  "test_dist_format_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_format_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
