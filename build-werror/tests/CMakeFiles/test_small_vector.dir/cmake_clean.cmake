file(REMOVE_RECURSE
  "CMakeFiles/test_small_vector.dir/test_small_vector.cpp.o"
  "CMakeFiles/test_small_vector.dir/test_small_vector.cpp.o.d"
  "test_small_vector"
  "test_small_vector.pdb"
  "test_small_vector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_small_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
