# Empty dependencies file for test_small_vector.
# This may be replaced when dependencies are built.
