file(REMOVE_RECURSE
  "CMakeFiles/test_comm_plan.dir/test_comm_plan.cpp.o"
  "CMakeFiles/test_comm_plan.dir/test_comm_plan.cpp.o.d"
  "test_comm_plan"
  "test_comm_plan.pdb"
  "test_comm_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
