# Empty dependencies file for test_comm_plan.
# This may be replaced when dependencies are built.
