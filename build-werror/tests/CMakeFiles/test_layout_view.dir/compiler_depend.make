# Empty compiler generated dependencies file for test_layout_view.
# This may be replaced when dependencies are built.
