file(REMOVE_RECURSE
  "CMakeFiles/test_layout_view.dir/test_layout_view.cpp.o"
  "CMakeFiles/test_layout_view.dir/test_layout_view.cpp.o.d"
  "test_layout_view"
  "test_layout_view.pdb"
  "test_layout_view[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layout_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
