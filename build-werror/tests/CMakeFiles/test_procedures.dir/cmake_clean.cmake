file(REMOVE_RECURSE
  "CMakeFiles/test_procedures.dir/test_procedures.cpp.o"
  "CMakeFiles/test_procedures.dir/test_procedures.cpp.o.d"
  "test_procedures"
  "test_procedures.pdb"
  "test_procedures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_procedures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
