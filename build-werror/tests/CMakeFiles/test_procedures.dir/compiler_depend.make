# Empty compiler generated dependencies file for test_procedures.
# This may be replaced when dependencies are built.
