# Empty dependencies file for test_exec_properties.
# This may be replaced when dependencies are built.
