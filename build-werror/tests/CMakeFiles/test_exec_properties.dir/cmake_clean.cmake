file(REMOVE_RECURSE
  "CMakeFiles/test_exec_properties.dir/test_exec_properties.cpp.o"
  "CMakeFiles/test_exec_properties.dir/test_exec_properties.cpp.o.d"
  "test_exec_properties"
  "test_exec_properties.pdb"
  "test_exec_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
