file(REMOVE_RECURSE
  "CMakeFiles/test_triplet.dir/test_triplet.cpp.o"
  "CMakeFiles/test_triplet.dir/test_triplet.cpp.o.d"
  "test_triplet"
  "test_triplet.pdb"
  "test_triplet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_triplet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
