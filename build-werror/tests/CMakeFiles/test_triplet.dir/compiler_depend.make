# Empty compiler generated dependencies file for test_triplet.
# This may be replaced when dependencies are built.
