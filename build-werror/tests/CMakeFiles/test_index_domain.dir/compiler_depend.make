# Empty compiler generated dependencies file for test_index_domain.
# This may be replaced when dependencies are built.
