file(REMOVE_RECURSE
  "CMakeFiles/test_index_domain.dir/test_index_domain.cpp.o"
  "CMakeFiles/test_index_domain.dir/test_index_domain.cpp.o.d"
  "test_index_domain"
  "test_index_domain.pdb"
  "test_index_domain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
