file(REMOVE_RECURSE
  "CMakeFiles/test_conformance_errors.dir/test_conformance_errors.cpp.o"
  "CMakeFiles/test_conformance_errors.dir/test_conformance_errors.cpp.o.d"
  "test_conformance_errors"
  "test_conformance_errors.pdb"
  "test_conformance_errors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conformance_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
