# Empty dependencies file for test_conformance_errors.
# This may be replaced when dependencies are built.
