file(REMOVE_RECURSE
  "CMakeFiles/test_data_env.dir/test_data_env.cpp.o"
  "CMakeFiles/test_data_env.dir/test_data_env.cpp.o.d"
  "test_data_env"
  "test_data_env.pdb"
  "test_data_env[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
