file(REMOVE_RECURSE
  "CMakeFiles/test_forest.dir/test_forest.cpp.o"
  "CMakeFiles/test_forest.dir/test_forest.cpp.o.d"
  "test_forest"
  "test_forest.pdb"
  "test_forest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
