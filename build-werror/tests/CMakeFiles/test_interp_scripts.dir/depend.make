# Empty dependencies file for test_interp_scripts.
# This may be replaced when dependencies are built.
