file(REMOVE_RECURSE
  "CMakeFiles/test_interp_scripts.dir/test_interp_scripts.cpp.o"
  "CMakeFiles/test_interp_scripts.dir/test_interp_scripts.cpp.o.d"
  "test_interp_scripts"
  "test_interp_scripts.pdb"
  "test_interp_scripts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interp_scripts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
