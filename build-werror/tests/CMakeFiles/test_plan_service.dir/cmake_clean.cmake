file(REMOVE_RECURSE
  "CMakeFiles/test_plan_service.dir/test_plan_service.cpp.o"
  "CMakeFiles/test_plan_service.dir/test_plan_service.cpp.o.d"
  "test_plan_service"
  "test_plan_service.pdb"
  "test_plan_service[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plan_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
