# Empty compiler generated dependencies file for test_plan_service.
# This may be replaced when dependencies are built.
