file(REMOVE_RECURSE
  "CMakeFiles/test_dist_formats.dir/test_dist_formats.cpp.o"
  "CMakeFiles/test_dist_formats.dir/test_dist_formats.cpp.o.d"
  "test_dist_formats"
  "test_dist_formats.pdb"
  "test_dist_formats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
