# Empty dependencies file for test_dist_formats.
# This may be replaced when dependencies are built.
