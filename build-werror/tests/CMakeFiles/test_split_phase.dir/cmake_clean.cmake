file(REMOVE_RECURSE
  "CMakeFiles/test_split_phase.dir/test_split_phase.cpp.o"
  "CMakeFiles/test_split_phase.dir/test_split_phase.cpp.o.d"
  "test_split_phase"
  "test_split_phase.pdb"
  "test_split_phase[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_split_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
