# Empty compiler generated dependencies file for test_split_phase.
# This may be replaced when dependencies are built.
