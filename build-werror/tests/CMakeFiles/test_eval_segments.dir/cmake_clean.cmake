file(REMOVE_RECURSE
  "CMakeFiles/test_eval_segments.dir/test_eval_segments.cpp.o"
  "CMakeFiles/test_eval_segments.dir/test_eval_segments.cpp.o.d"
  "test_eval_segments"
  "test_eval_segments.pdb"
  "test_eval_segments[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eval_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
