# Empty compiler generated dependencies file for test_eval_segments.
# This may be replaced when dependencies are built.
