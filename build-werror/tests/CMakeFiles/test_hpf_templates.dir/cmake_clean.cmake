file(REMOVE_RECURSE
  "CMakeFiles/test_hpf_templates.dir/test_hpf_templates.cpp.o"
  "CMakeFiles/test_hpf_templates.dir/test_hpf_templates.cpp.o.d"
  "test_hpf_templates"
  "test_hpf_templates.pdb"
  "test_hpf_templates[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpf_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
