file(REMOVE_RECURSE
  "CMakeFiles/test_inquiry.dir/test_inquiry.cpp.o"
  "CMakeFiles/test_inquiry.dir/test_inquiry.cpp.o.d"
  "test_inquiry"
  "test_inquiry.pdb"
  "test_inquiry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inquiry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
