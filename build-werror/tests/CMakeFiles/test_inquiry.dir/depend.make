# Empty dependencies file for test_inquiry.
# This may be replaced when dependencies are built.
