file(REMOVE_RECURSE
  "CMakeFiles/test_align_expr.dir/test_align_expr.cpp.o"
  "CMakeFiles/test_align_expr.dir/test_align_expr.cpp.o.d"
  "test_align_expr"
  "test_align_expr.pdb"
  "test_align_expr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_align_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
