# Empty dependencies file for test_align_expr.
# This may be replaced when dependencies are built.
