file(REMOVE_RECURSE
  "CMakeFiles/test_construct.dir/test_construct.cpp.o"
  "CMakeFiles/test_construct.dir/test_construct.cpp.o.d"
  "test_construct"
  "test_construct.pdb"
  "test_construct[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_construct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
