# Empty dependencies file for test_construct.
# This may be replaced when dependencies are built.
