# Empty compiler generated dependencies file for test_directives_parser.
# This may be replaced when dependencies are built.
