file(REMOVE_RECURSE
  "CMakeFiles/test_directives_parser.dir/test_directives_parser.cpp.o"
  "CMakeFiles/test_directives_parser.dir/test_directives_parser.cpp.o.d"
  "test_directives_parser"
  "test_directives_parser.pdb"
  "test_directives_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_directives_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
