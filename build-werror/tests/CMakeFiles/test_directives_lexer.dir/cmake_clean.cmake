file(REMOVE_RECURSE
  "CMakeFiles/test_directives_lexer.dir/test_directives_lexer.cpp.o"
  "CMakeFiles/test_directives_lexer.dir/test_directives_lexer.cpp.o.d"
  "test_directives_lexer"
  "test_directives_lexer.pdb"
  "test_directives_lexer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_directives_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
