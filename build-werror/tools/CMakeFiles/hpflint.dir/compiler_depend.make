# Empty compiler generated dependencies file for hpflint.
# This may be replaced when dependencies are built.
