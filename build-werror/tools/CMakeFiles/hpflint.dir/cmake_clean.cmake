file(REMOVE_RECURSE
  "CMakeFiles/hpflint.dir/hpflint.cpp.o"
  "CMakeFiles/hpflint.dir/hpflint.cpp.o.d"
  "hpflint"
  "hpflint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpflint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
