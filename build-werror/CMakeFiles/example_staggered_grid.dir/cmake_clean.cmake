file(REMOVE_RECURSE
  "CMakeFiles/example_staggered_grid.dir/examples/staggered_grid.cpp.o"
  "CMakeFiles/example_staggered_grid.dir/examples/staggered_grid.cpp.o.d"
  "example_staggered_grid"
  "example_staggered_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_staggered_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
