# Empty dependencies file for example_staggered_grid.
# This may be replaced when dependencies are built.
