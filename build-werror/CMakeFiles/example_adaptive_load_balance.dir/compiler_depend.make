# Empty compiler generated dependencies file for example_adaptive_load_balance.
# This may be replaced when dependencies are built.
