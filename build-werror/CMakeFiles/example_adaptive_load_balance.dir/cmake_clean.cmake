file(REMOVE_RECURSE
  "CMakeFiles/example_adaptive_load_balance.dir/examples/adaptive_load_balance.cpp.o"
  "CMakeFiles/example_adaptive_load_balance.dir/examples/adaptive_load_balance.cpp.o.d"
  "example_adaptive_load_balance"
  "example_adaptive_load_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_adaptive_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
