file(REMOVE_RECURSE
  "CMakeFiles/example_procedure_inheritance.dir/examples/procedure_inheritance.cpp.o"
  "CMakeFiles/example_procedure_inheritance.dir/examples/procedure_inheritance.cpp.o.d"
  "example_procedure_inheritance"
  "example_procedure_inheritance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_procedure_inheritance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
