# Empty compiler generated dependencies file for example_procedure_inheritance.
# This may be replaced when dependencies are built.
