# Empty dependencies file for hpfnt.
# This may be replaced when dependencies are built.
