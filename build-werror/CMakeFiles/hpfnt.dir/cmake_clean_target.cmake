file(REMOVE_RECURSE
  "libhpfnt.a"
)
