
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/analyzer.cpp" "CMakeFiles/hpfnt.dir/src/analysis/analyzer.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/analysis/analyzer.cpp.o.d"
  "/root/repo/src/analysis/diagnostic.cpp" "CMakeFiles/hpfnt.dir/src/analysis/diagnostic.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/analysis/diagnostic.cpp.o.d"
  "/root/repo/src/balance/partition.cpp" "CMakeFiles/hpfnt.dir/src/balance/partition.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/balance/partition.cpp.o.d"
  "/root/repo/src/core/align_expr.cpp" "CMakeFiles/hpfnt.dir/src/core/align_expr.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/core/align_expr.cpp.o.d"
  "/root/repo/src/core/alignment.cpp" "CMakeFiles/hpfnt.dir/src/core/alignment.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/core/alignment.cpp.o.d"
  "/root/repo/src/core/array.cpp" "CMakeFiles/hpfnt.dir/src/core/array.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/core/array.cpp.o.d"
  "/root/repo/src/core/construct.cpp" "CMakeFiles/hpfnt.dir/src/core/construct.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/core/construct.cpp.o.d"
  "/root/repo/src/core/data_env.cpp" "CMakeFiles/hpfnt.dir/src/core/data_env.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/core/data_env.cpp.o.d"
  "/root/repo/src/core/dist_format.cpp" "CMakeFiles/hpfnt.dir/src/core/dist_format.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/core/dist_format.cpp.o.d"
  "/root/repo/src/core/distribution.cpp" "CMakeFiles/hpfnt.dir/src/core/distribution.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/core/distribution.cpp.o.d"
  "/root/repo/src/core/forest.cpp" "CMakeFiles/hpfnt.dir/src/core/forest.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/core/forest.cpp.o.d"
  "/root/repo/src/core/index_domain.cpp" "CMakeFiles/hpfnt.dir/src/core/index_domain.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/core/index_domain.cpp.o.d"
  "/root/repo/src/core/inquiry.cpp" "CMakeFiles/hpfnt.dir/src/core/inquiry.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/core/inquiry.cpp.o.d"
  "/root/repo/src/core/layout_view.cpp" "CMakeFiles/hpfnt.dir/src/core/layout_view.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/core/layout_view.cpp.o.d"
  "/root/repo/src/core/processors.cpp" "CMakeFiles/hpfnt.dir/src/core/processors.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/core/processors.cpp.o.d"
  "/root/repo/src/core/triplet.cpp" "CMakeFiles/hpfnt.dir/src/core/triplet.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/core/triplet.cpp.o.d"
  "/root/repo/src/directives/ast.cpp" "CMakeFiles/hpfnt.dir/src/directives/ast.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/directives/ast.cpp.o.d"
  "/root/repo/src/directives/binder.cpp" "CMakeFiles/hpfnt.dir/src/directives/binder.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/directives/binder.cpp.o.d"
  "/root/repo/src/directives/interp.cpp" "CMakeFiles/hpfnt.dir/src/directives/interp.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/directives/interp.cpp.o.d"
  "/root/repo/src/directives/lexer.cpp" "CMakeFiles/hpfnt.dir/src/directives/lexer.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/directives/lexer.cpp.o.d"
  "/root/repo/src/directives/parser.cpp" "CMakeFiles/hpfnt.dir/src/directives/parser.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/directives/parser.cpp.o.d"
  "/root/repo/src/directives/token.cpp" "CMakeFiles/hpfnt.dir/src/directives/token.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/directives/token.cpp.o.d"
  "/root/repo/src/exec/assign.cpp" "CMakeFiles/hpfnt.dir/src/exec/assign.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/exec/assign.cpp.o.d"
  "/root/repo/src/exec/comm_plan.cpp" "CMakeFiles/hpfnt.dir/src/exec/comm_plan.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/exec/comm_plan.cpp.o.d"
  "/root/repo/src/exec/overlap.cpp" "CMakeFiles/hpfnt.dir/src/exec/overlap.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/exec/overlap.cpp.o.d"
  "/root/repo/src/exec/redistribute_exec.cpp" "CMakeFiles/hpfnt.dir/src/exec/redistribute_exec.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/exec/redistribute_exec.cpp.o.d"
  "/root/repo/src/exec/section_expr.cpp" "CMakeFiles/hpfnt.dir/src/exec/section_expr.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/exec/section_expr.cpp.o.d"
  "/root/repo/src/exec/stencil.cpp" "CMakeFiles/hpfnt.dir/src/exec/stencil.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/exec/stencil.cpp.o.d"
  "/root/repo/src/exec/storage.cpp" "CMakeFiles/hpfnt.dir/src/exec/storage.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/exec/storage.cpp.o.d"
  "/root/repo/src/hpf/hpf_model.cpp" "CMakeFiles/hpfnt.dir/src/hpf/hpf_model.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/hpf/hpf_model.cpp.o.d"
  "/root/repo/src/hpf/template_object.cpp" "CMakeFiles/hpfnt.dir/src/hpf/template_object.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/hpf/template_object.cpp.o.d"
  "/root/repo/src/machine/comm.cpp" "CMakeFiles/hpfnt.dir/src/machine/comm.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/machine/comm.cpp.o.d"
  "/root/repo/src/machine/metrics.cpp" "CMakeFiles/hpfnt.dir/src/machine/metrics.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/machine/metrics.cpp.o.d"
  "/root/repo/src/machine/topology.cpp" "CMakeFiles/hpfnt.dir/src/machine/topology.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/machine/topology.cpp.o.d"
  "/root/repo/src/service/plan_service.cpp" "CMakeFiles/hpfnt.dir/src/service/plan_service.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/service/plan_service.cpp.o.d"
  "/root/repo/src/support/error.cpp" "CMakeFiles/hpfnt.dir/src/support/error.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/support/error.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "CMakeFiles/hpfnt.dir/src/support/rng.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/support/rng.cpp.o.d"
  "/root/repo/src/support/strings.cpp" "CMakeFiles/hpfnt.dir/src/support/strings.cpp.o" "gcc" "CMakeFiles/hpfnt.dir/src/support/strings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
