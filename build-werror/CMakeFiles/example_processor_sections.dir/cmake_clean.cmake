file(REMOVE_RECURSE
  "CMakeFiles/example_processor_sections.dir/examples/processor_sections.cpp.o"
  "CMakeFiles/example_processor_sections.dir/examples/processor_sections.cpp.o.d"
  "example_processor_sections"
  "example_processor_sections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_processor_sections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
