# Empty dependencies file for example_processor_sections.
# This may be replaced when dependencies are built.
