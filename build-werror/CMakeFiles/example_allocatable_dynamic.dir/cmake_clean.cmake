file(REMOVE_RECURSE
  "CMakeFiles/example_allocatable_dynamic.dir/examples/allocatable_dynamic.cpp.o"
  "CMakeFiles/example_allocatable_dynamic.dir/examples/allocatable_dynamic.cpp.o.d"
  "example_allocatable_dynamic"
  "example_allocatable_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_allocatable_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
