# Empty dependencies file for example_allocatable_dynamic.
# This may be replaced when dependencies are built.
