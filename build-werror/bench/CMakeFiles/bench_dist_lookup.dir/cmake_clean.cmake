file(REMOVE_RECURSE
  "CMakeFiles/bench_dist_lookup.dir/bench_dist_lookup.cpp.o"
  "CMakeFiles/bench_dist_lookup.dir/bench_dist_lookup.cpp.o.d"
  "bench_dist_lookup"
  "bench_dist_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dist_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
