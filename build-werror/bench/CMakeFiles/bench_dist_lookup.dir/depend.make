# Empty dependencies file for bench_dist_lookup.
# This may be replaced when dependencies are built.
