file(REMOVE_RECURSE
  "CMakeFiles/bench_redistribute.dir/bench_redistribute.cpp.o"
  "CMakeFiles/bench_redistribute.dir/bench_redistribute.cpp.o.d"
  "bench_redistribute"
  "bench_redistribute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_redistribute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
