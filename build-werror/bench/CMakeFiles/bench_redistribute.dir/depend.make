# Empty dependencies file for bench_redistribute.
# This may be replaced when dependencies are built.
