file(REMOVE_RECURSE
  "CMakeFiles/bench_proc_sections.dir/bench_proc_sections.cpp.o"
  "CMakeFiles/bench_proc_sections.dir/bench_proc_sections.cpp.o.d"
  "bench_proc_sections"
  "bench_proc_sections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_proc_sections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
