# Empty compiler generated dependencies file for bench_proc_sections.
# This may be replaced when dependencies are built.
