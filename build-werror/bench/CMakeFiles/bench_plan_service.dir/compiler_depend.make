# Empty compiler generated dependencies file for bench_plan_service.
# This may be replaced when dependencies are built.
