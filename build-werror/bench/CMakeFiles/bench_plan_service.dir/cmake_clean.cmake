file(REMOVE_RECURSE
  "CMakeFiles/bench_plan_service.dir/bench_plan_service.cpp.o"
  "CMakeFiles/bench_plan_service.dir/bench_plan_service.cpp.o.d"
  "bench_plan_service"
  "bench_plan_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plan_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
