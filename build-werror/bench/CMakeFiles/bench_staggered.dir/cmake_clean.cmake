file(REMOVE_RECURSE
  "CMakeFiles/bench_staggered.dir/bench_staggered.cpp.o"
  "CMakeFiles/bench_staggered.dir/bench_staggered.cpp.o.d"
  "bench_staggered"
  "bench_staggered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_staggered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
