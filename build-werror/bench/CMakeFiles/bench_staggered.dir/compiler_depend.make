# Empty compiler generated dependencies file for bench_staggered.
# This may be replaced when dependencies are built.
