file(REMOVE_RECURSE
  "CMakeFiles/bench_procedure.dir/bench_procedure.cpp.o"
  "CMakeFiles/bench_procedure.dir/bench_procedure.cpp.o.d"
  "bench_procedure"
  "bench_procedure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_procedure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
