# Empty compiler generated dependencies file for bench_procedure.
# This may be replaced when dependencies are built.
