# Empty dependencies file for bench_jacobi.
# This may be replaced when dependencies are built.
