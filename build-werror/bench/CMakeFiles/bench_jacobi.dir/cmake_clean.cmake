file(REMOVE_RECURSE
  "CMakeFiles/bench_jacobi.dir/bench_jacobi.cpp.o"
  "CMakeFiles/bench_jacobi.dir/bench_jacobi.cpp.o.d"
  "bench_jacobi"
  "bench_jacobi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jacobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
