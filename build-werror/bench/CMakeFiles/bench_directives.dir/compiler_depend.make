# Empty compiler generated dependencies file for bench_directives.
# This may be replaced when dependencies are built.
