file(REMOVE_RECURSE
  "CMakeFiles/bench_directives.dir/bench_directives.cpp.o"
  "CMakeFiles/bench_directives.dir/bench_directives.cpp.o.d"
  "bench_directives"
  "bench_directives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_directives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
