file(REMOVE_RECURSE
  "CMakeFiles/bench_iterative_sweep.dir/bench_iterative_sweep.cpp.o"
  "CMakeFiles/bench_iterative_sweep.dir/bench_iterative_sweep.cpp.o.d"
  "bench_iterative_sweep"
  "bench_iterative_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iterative_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
