# Empty compiler generated dependencies file for bench_iterative_sweep.
# This may be replaced when dependencies are built.
