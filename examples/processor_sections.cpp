// Distribution to processor *sections* (paper §1 generalization 1 and the
// §4 example "DISTRIBUTE B(CYCLIC) TO Q(1:NOP:2)"): two independent
// workloads mapped onto disjoint halves of the machine run without
// interfering, while the same two workloads sharing the full machine
// contend on every processor.
#include <cstdio>

#include "core/data_env.hpp"
#include "exec/assign.hpp"
#include "machine/metrics.hpp"

using namespace hpfnt;

namespace {
constexpr Extent kN = 1024;
constexpr Extent kProcs = 16;

Extent max_load(const Distribution& d, Extent procs) {
  Extent best = 0;
  for (ApId p = 0; p < procs; ++p) {
    best = std::max(best, d.local_count(p));
  }
  return best;
}
}  // namespace

int main() {
  Machine machine(kProcs);
  ProcessorSpace space(kProcs);
  const ProcessorArrangement& q =
      space.declare("Q", IndexDomain::of_extents({kProcs}));

  std::printf("Two workloads of %lld elements on %lld processors (§4: "
              "processor sections)\n\n",
              static_cast<long long>(kN), static_cast<long long>(kProcs));

  DataEnv env(space);
  DistArray& a1 = env.real("A1", IndexDomain{Dim(1, kN)});
  DistArray& a2 = env.real("A2", IndexDomain{Dim(1, kN)});
  DistArray& b1 = env.real("B1", IndexDomain{Dim(1, kN)});
  DistArray& b2 = env.real("B2", IndexDomain{Dim(1, kN)});

  // Scheme 1: both workloads share the whole machine.
  env.distribute(a1, {DistFormat::block()}, ProcessorRef(q));
  env.distribute(a2, {DistFormat::block()}, ProcessorRef(q));
  // Scheme 2: odd processors take workload 1, even processors workload 2
  // (the paper's Q(1:NOP:2) idiom).
  ProcessorRef odd(q, {TargetSub::range(Triplet(1, kProcs, 2))});
  ProcessorRef even(q, {TargetSub::range(Triplet(2, kProcs, 2))});
  env.distribute(b1, {DistFormat::cyclic()}, odd);
  env.distribute(b2, {DistFormat::cyclic()}, even);

  TextTable table({"scheme", "array", "processors used",
                   "max elements/processor"});
  for (const auto& [scheme, array] :
       std::vector<std::pair<const char*, DistArray*>>{
           {"shared machine", &a1},
           {"shared machine", &a2},
           {"section Q(1:16:2)", &b1},
           {"section Q(2:16:2)", &b2}}) {
    Distribution d = env.distribution_of(*array);
    Extent used = 0;
    for (ApId p = 0; p < kProcs; ++p) {
      if (d.local_count(p) > 0) ++used;
    }
    table.add_row({scheme, array->name(), format_count(used),
                   format_count(max_load(d, kProcs))});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Interference check: with sections, the two workloads' owners are
  // disjoint, so their steps never serialize on one processor.
  Distribution d1 = env.distribution_of(b1);
  Distribution d2 = env.distribution_of(b2);
  bool overlap = false;
  for (ApId p = 0; p < kProcs; ++p) {
    if (d1.local_count(p) > 0 && d2.local_count(p) > 0) overlap = true;
  }
  std::printf("sectioned workloads share a processor: %s\n",
              overlap ? "yes" : "no (fully isolated sub-machines)");
  return 0;
}
