// The §8.1.1 staggered-grid example (posted by C. A. Thole on the HPFF
// mailing list), run three ways:
//   1. HPF templates, template distributed (CYCLIC,CYCLIC): the "worst
//      possible effect" — every stencil neighbor lands remote;
//   2. HPF templates, template distributed (BLOCK,BLOCK);
//   3. the paper's template-free solution: DISTRIBUTE (BLOCK,BLOCK)::U,V,P
//      with the Vienna block definition.
// The simulator prices the update P = U(0:N-1,:)+U(1:N,:)+V(:,0:N-1)+V(:,1:N)
// under each mapping.
#include <cstdio>
#include <vector>

#include "core/data_env.hpp"
#include "exec/assign.hpp"
#include "hpf/hpf_model.hpp"
#include "machine/metrics.hpp"

using namespace hpfnt;

namespace {

constexpr Extent kN = 32;

struct Result {
  std::string scheme;
  AssignResult update;
};

/// Creates U, V, P with the given storage layouts and runs the staggered
/// update once, priced by the machine simulator.
AssignResult run_update(Machine& machine, ProcessorSpace& space,
                        const Distribution& du, const Distribution& dv,
                        const Distribution& dp) {
  DataEnv env(space);
  DistArray& u = env.real("U", IndexDomain{Dim(0, kN), Dim(1, kN)});
  DistArray& v = env.real("V", IndexDomain{Dim(1, kN), Dim(0, kN)});
  DistArray& p = env.real("P", IndexDomain{Dim(1, kN), Dim(1, kN)});

  ProgramState state(machine);
  state.create_with(u, du);
  state.create_with(v, dv);
  state.create_with(p, dp);
  state.fill(u.id(), [](const IndexTuple& i) {
    return static_cast<double>(i[0] + i[1]);
  });
  state.fill(v.id(), [](const IndexTuple& i) {
    return static_cast<double>(i[0] - i[1]);
  });

  const Triplet full(1, kN);
  SecExpr rhs = SecExpr::section(u, {Triplet(0, kN - 1), full}) +
                SecExpr::section(u, {Triplet(1, kN), full}) +
                SecExpr::section(v, {full, Triplet(0, kN - 1)}) +
                SecExpr::section(v, {full, Triplet(1, kN)});
  return assign_on_layout(state, p, {full, full}, rhs,
                          "staggered P = U+U+V+V");
}

}  // namespace

int main() {
  Machine machine(16);
  ProcessorSpace space(16);
  const ProcessorArrangement& grid =
      space.declare("G", IndexDomain::of_extents({4, 4}));

  const IndexDomain ud{Dim(0, kN), Dim(1, kN)};
  const IndexDomain vd{Dim(1, kN), Dim(0, kN)};
  const IndexDomain pd{Dim(1, kN), Dim(1, kN)};

  std::vector<Result> results;

  // --- schemes 1 and 2: the HPF template program ----------------------------
  for (const bool cyclic : {true, false}) {
    hpf::HpfModel model(space);
    hpf::HpfTemplate& t = model.declare_template(
        "T", IndexDomain{Dim(0, 2 * kN), Dim(0, 2 * kN)});
    hpf::HpfArray& u = model.declare_array("U", ud);
    hpf::HpfArray& v = model.declare_array("V", vd);
    hpf::HpfArray& p = model.declare_array("P", pd);
    AlignExpr i = AlignExpr::dummy(0);
    AlignExpr j = AlignExpr::dummy(1);
    model.align_to_template(
        p, t, AlignSpec({AligneeSub::dummy(0, "I"), AligneeSub::dummy(1, "J")},
                        {BaseSub::of_expr(i * 2 - 1),
                         BaseSub::of_expr(j * 2 - 1)}));
    model.align_to_template(
        u, t, AlignSpec({AligneeSub::dummy(0, "I"), AligneeSub::dummy(1, "J")},
                        {BaseSub::of_expr(i * 2),
                         BaseSub::of_expr(j * 2 - 1)}));
    model.align_to_template(
        v, t, AlignSpec({AligneeSub::dummy(0, "I"), AligneeSub::dummy(1, "J")},
                        {BaseSub::of_expr(i * 2 - 1),
                         BaseSub::of_expr(j * 2)}));
    model.distribute_template(
        t,
        cyclic ? std::vector<DistFormat>{DistFormat::cyclic(),
                                         DistFormat::cyclic()}
               : std::vector<DistFormat>{DistFormat::block(),
                                         DistFormat::block()},
        ProcessorRef(grid));
    results.push_back({cyclic ? "template (CYCLIC,CYCLIC)"
                              : "template (BLOCK,BLOCK)",
                       run_update(machine, space, model.distribution_of(u),
                                  model.distribution_of(v),
                                  model.distribution_of(p))});
  }

  // --- scheme 3: the paper's template-free solution --------------------------
  {
    auto vblocks = std::vector<DistFormat>{DistFormat::vienna_block(),
                                           DistFormat::vienna_block()};
    Distribution du = Distribution::formats(ud, vblocks, ProcessorRef(grid));
    Distribution dv = Distribution::formats(vd, vblocks, ProcessorRef(grid));
    Distribution dp = Distribution::formats(pd, vblocks, ProcessorRef(grid));
    results.push_back({"direct (BLOCK,BLOCK), no template",
                       run_update(machine, space, du, dv, dp)});
  }

  std::printf(
      "Staggered grid P = U+U+V+V, N=%lld, 4x4 processors (paper §8.1.1)\n\n",
      static_cast<long long>(kN));
  TextTable table(
      {"scheme", "remote reads", "messages", "bytes", "est. time"});
  for (const Result& r : results) {
    table.add_row({r.scheme, format_pct(r.update.remote_read_fraction),
                   format_count(r.update.step.messages),
                   format_bytes(r.update.step.bytes),
                   format_us(r.update.step.time_us)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "The (CYCLIC,CYCLIC) template sends every neighbor remote — \"the "
      "worst possible effect\" (§8.1.1);\nthe paper's direct block "
      "distribution achieves collocation with no template at all.\n");
  return 0;
}
