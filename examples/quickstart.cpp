// Quickstart: declare processors, distribute and align arrays, run a
// distributed computation on the simulated machine, and inspect the
// mappings — the whole model of the paper in one page.
#include <cstdio>

#include "core/data_env.hpp"
#include "core/inquiry.hpp"
#include "exec/stencil.hpp"
#include "machine/metrics.hpp"

using namespace hpfnt;

int main() {
  // A 16-processor distributed-memory machine and its abstract processors.
  Machine machine(16);
  ProcessorSpace space(16);
  const ProcessorArrangement& grid =
      space.declare("GRID", IndexDomain::of_extents({4, 4}));

  // One program unit's data space.
  DataEnv env(space);
  const Extent n = 64;
  DistArray& a = env.real("A", IndexDomain{Dim(1, n), Dim(1, n)});
  DistArray& b = env.real("B", IndexDomain{Dim(1, n), Dim(1, n)});

  // !HPF$ DISTRIBUTE A(BLOCK, BLOCK) TO GRID
  env.distribute(a, {DistFormat::block(), DistFormat::block()},
                 ProcessorRef(grid));
  // !HPF$ ALIGN B(:,:) WITH A(:,:)  — B follows A wherever A goes.
  env.align(b, a, AlignSpec::colons(2));

  std::printf("A: %s\n", env.distribution_of(a).to_string().c_str());
  std::printf("B: %s (aligned to %s)\n",
              env.distribution_of(b).to_string().c_str(),
              env.aligned_to(b)->name().c_str());

  // Give the arrays real storage on the simulated machine and run Jacobi.
  ProgramState state(machine);
  state.create(env, a);
  state.create(env, b);
  state.fill(a.id(), [n](const IndexTuple& i) {
    return (i[0] == 1 || i[0] == n || i[1] == 1 || i[1] == n) ? 100.0 : 0.0;
  });
  state.fill(b.id(), [n](const IndexTuple& i) {
    return (i[0] == 1 || i[0] == n || i[1] == 1 || i[1] == n) ? 100.0 : 0.0;
  });

  SweepStats stats = jacobi(state, env, a, b, n, 10);
  std::printf("\n10 Jacobi iterations on %lldx%lld over 4x4 processors:\n",
              static_cast<long long>(n), static_cast<long long>(n));
  std::printf("  messages:      %lld\n",
              static_cast<long long>(stats.messages));
  std::printf("  bytes moved:   %s\n", format_bytes(stats.bytes).c_str());
  std::printf("  remote reads:  %s of all operand reads\n",
              format_pct(stats.remote_read_fraction).c_str());
  std::printf("  est. time:     %s\n", format_us(stats.time_us).c_str());
  std::printf("  checksum(A):   %.6f\n", state.checksum(a.id()));

  // Because B is *aligned* to A, elementwise combinations are free.
  AssignResult free_op =
      assign(state, env, b, SecExpr::whole(a) + SecExpr::whole(b),
             "B = A + B (collocated)");
  std::printf("\nB = A + B moved %lld messages (aligned operands are "
              "collocated, §2.3)\n",
              static_cast<long long>(free_op.step.messages));
  return 0;
}
