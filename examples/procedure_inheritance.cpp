// The §8.1.2 scenario end to end, with real data movement: passing the
// array section A(2:996:2) of a CYCLIC(3)-distributed array to a
// subroutine whose dummy (a) inherits the distribution (DISTRIBUTE X *),
// vs (b) forces an explicit one (DISTRIBUTE X(BLOCK)). Inheritance costs
// nothing; forcing pays a remap at call AND return. Inquiry shows the
// callee everything about the inherited mapping it could not name
// syntactically.
#include <cstdio>

#include "core/inquiry.hpp"
#include "directives/interp.hpp"
#include "machine/metrics.hpp"

using namespace hpfnt;

int main() {
  Machine machine(16);
  ProgramState state(machine);
  ProcessorSpace space(16);
  dir::Interpreter in(space);
  in.set_state(&state);

  in.run(
      "!HPF$ PROCESSORS Q(16)\n"
      "REAL A(1000)\n"
      "!HPF$ DISTRIBUTE A(CYCLIC(3)) TO Q\n"
      "SUBROUTINE INHERITS(X)\n"
      "REAL X(:)\n"
      "!HPF$ DISTRIBUTE X *\n"
      "END\n"
      "SUBROUTINE FORCES(X)\n"
      "REAL X(:)\n"
      "!HPF$ DISTRIBUTE X(BLOCK) TO Q\n"
      "END\n");

  DistArray& a = in.env().find("A");
  state.fill(a.id(),
             [](const IndexTuple& i) { return static_cast<double>(i[0]); });

  std::printf("A(1000) CYCLIC(3); CALL SUB(A(2:996:2))  — paper §8.1.2\n\n");
  TextTable table({"dummy mapping", "copy-in msgs", "copy-in bytes",
                   "copy-out msgs", "copy-out bytes", "est. total"});

  in.run("CALL INHERITS(A(2:996:2))\n");
  in.run("CALL FORCES(A(2:996:2))\n");
  const std::vector<StepStats>& steps = in.steps();
  // Steps: [0,1] = INHERITS in/out, [2,3] = FORCES in/out.
  table.add_row({"DISTRIBUTE X *  (inherit)",
                 format_count(steps[0].messages),
                 format_bytes(steps[0].bytes),
                 format_count(steps[1].messages),
                 format_bytes(steps[1].bytes),
                 format_us(steps[0].time_us + steps[1].time_us)});
  table.add_row({"DISTRIBUTE X(BLOCK)  (force)",
                 format_count(steps[2].messages),
                 format_bytes(steps[2].bytes),
                 format_count(steps[3].messages),
                 format_bytes(steps[3].bytes),
                 format_us(steps[2].time_us + steps[3].time_us)});
  std::printf("%s\n", table.to_string().c_str());

  // What the callee can still learn about an inherited mapping (§8.1.2:
  // "inquiry functions must be used to determine the properties ...").
  ProcedureSig sig{"PEEK",
                   {DummySpec{"X", ElemType::kReal, DummyMapping::inherit(),
                              false}}};
  CallFrame frame = in.env().call(
      sig, {ActualArg::of_section(a.id(), {Triplet(2, 996, 2)})});
  const DistArray& x = frame.callee->find("X");
  DistributionInfo info =
      inquire_distribution(frame.callee->distribution_of(x));
  std::printf("Inside the callee, inquiry sees X: rank %d, dim 1 kind %s, "
              "replicated: %s\n",
              info.rank, dim_kind_name(info.dim_kinds[0]),
              info.replicated ? "yes" : "no");
  std::printf("  full description: %s\n", info.description.c_str());
  std::printf("\nNo template had to cross the procedure boundary — the "
              "mapping is an attribute of the array itself (§8.2).\n");
  return 0;
}
