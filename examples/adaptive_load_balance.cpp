// Adaptive load balancing with GENERAL_BLOCK and REDISTRIBUTE (paper §1:
// irregular block distributions "are important for the support of load
// balancing"; §4.2 dynamic redistribution).
//
// A 1-D workload whose per-cell cost drifts over time (a sharpening front,
// as in adaptive mesh codes) is first distributed BLOCK; as the imbalance
// grows, the program computes a balanced GENERAL_BLOCK partition from the
// current weights and REDISTRIBUTEs — paying a one-time remap that the
// simulator prices against the per-step gain.
#include <cmath>
#include <cstdio>
#include <vector>

#include "balance/partition.hpp"
#include "core/data_env.hpp"
#include "exec/redistribute_exec.hpp"
#include "machine/metrics.hpp"

using namespace hpfnt;

namespace {

constexpr Extent kCells = 4096;
constexpr Extent kProcs = 16;
constexpr int kEpochs = 8;

/// Work per cell at epoch t: a Gaussian refinement front that sharpens and
/// drifts right over time.
std::vector<double> weights_at(int epoch) {
  std::vector<double> w(kCells);
  const double center = 0.2 + 0.6 * epoch / (kEpochs - 1);
  const double width = 0.30 - 0.03 * epoch;
  for (Extent i = 0; i < kCells; ++i) {
    const double x = static_cast<double>(i) / kCells;
    const double d = (x - center) / width;
    w[static_cast<std::size_t>(i)] = 1.0 + 40.0 * std::exp(-d * d);
  }
  return w;
}

double step_time(const PartitionQuality& q, const CostParams& cost) {
  return q.max_load * cost.flop_us;  // compute-bound sweep
}

}  // namespace

int main() {
  Machine machine(kProcs);
  ProcessorSpace space(kProcs);
  const ProcessorArrangement& q =
      space.declare("Q", IndexDomain::of_extents({kProcs}));
  DataEnv env(space);
  ProgramState state(machine);

  DistArray& mesh = env.real("MESH", IndexDomain{Dim(1, kCells)});
  env.distribute(mesh, {DistFormat::block()}, ProcessorRef(q));
  env.dynamic(mesh);
  state.create(env, mesh);
  state.fill(mesh.id(),
             [](const IndexTuple& i) { return static_cast<double>(i[0]); });

  std::printf("Adaptive refinement front over %lld cells, %lld processors\n",
              static_cast<long long>(kCells), static_cast<long long>(kProcs));
  std::printf("Static BLOCK vs GENERAL_BLOCK rebalanced when imbalance > "
              "1.25 (paper §1, §4.2)\n\n");

  TextTable table({"epoch", "imbalance (static BLOCK)",
                   "imbalance (rebalanced)", "remap cost", "step time static",
                   "step time rebalanced"});

  double current_imbalance_static = 0, current_imbalance_dyn = 0;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    std::vector<double> w = weights_at(epoch);

    // Static scheme: whatever BLOCK gives.
    DimMapping block = DimMapping::bind(DistFormat::block(), kCells, kProcs);
    PartitionQuality q_static = evaluate_mapping(w, block);
    current_imbalance_static = q_static.imbalance;

    // Dynamic scheme: rebalance when the current mapping degrades.
    Distribution current = env.distribution_of(mesh);
    PartitionQuality q_now = evaluate_mapping(w, current.dim_mapping(0));
    std::string remap_cost = "-";
    if (q_now.imbalance > 1.25) {
      DistFormat balanced = balanced_general_block(w, kProcs);
      std::vector<RemapEvent> events =
          env.redistribute(mesh, {balanced}, ProcessorRef(q));
      std::vector<StepStats> steps = apply_remaps(state, env, events);
      remap_cost = format_us(steps[0].time_us) + " / " +
                   format_bytes(steps[0].bytes);
      q_now = evaluate_mapping(w, env.distribution_of(mesh).dim_mapping(0));
    }
    current_imbalance_dyn = q_now.imbalance;

    table.add_row({std::to_string(epoch),
                   format_ratio(current_imbalance_static),
                   format_ratio(current_imbalance_dyn), remap_cost,
                   format_us(step_time(q_static, machine.cost())),
                   format_us(step_time(q_now, machine.cost()))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Values survive every remap: MESH(2048) = %.0f (expected "
              "2048)\n",
              state.value(mesh.id(), [] {
                IndexTuple t;
                t.push_back(2048);
                return t;
              }()));
  return 0;
}
