// The paper's §6 example, executed verbatim by the directive interpreter
// (READ replaced by scalar assignments, as the interpreter requires).
// Demonstrates: deferred mapping attributes on allocatables, REALIGN of an
// allocated array, REDISTRIBUTE of a DYNAMIC allocatable, and DEALLOCATE
// semantics.
#include <cstdio>

#include "core/inquiry.hpp"
#include "directives/interp.hpp"

using namespace hpfnt;

int main() {
  ProcessorSpace space(32);
  dir::Interpreter in(space);

  const char* program =
      "REAL,ALLOCATABLE(:,:) :: A,B\n"
      "REAL,ALLOCATABLE(:) :: C,D\n"
      "!HPF$ PROCESSORS PR(32)\n"
      "!HPF$ DISTRIBUTE A(CYCLIC,BLOCK)\n"
      "!HPF$ DISTRIBUTE(BLOCK) :: C,D\n"
      "!HPF$ DYNAMIC B,C\n"
      "M = 3\n"
      "N = 4\n"
      "ALLOCATE(A(N*M,N*M))\n"
      "ALLOCATE(B(N,N))\n"
      "!HPF$ REALIGN B(:,:) WITH A(M::M,1::M)\n"
      "ALLOCATE(C(10000), D(10000))\n"
      "!HPF$ REDISTRIBUTE C(CYCLIC) TO PR\n";

  std::printf("Running the paper's §6 example program:\n\n%s\n", program);
  in.run(program);

  DataEnv& env = in.env();
  for (const char* name : {"A", "B", "C", "D"}) {
    const DistArray& array = env.find(name);
    DistributionInfo info = inquire_distribution(env.distribution_of(array));
    AlignmentInfo align = inquire_alignment(env, array);
    std::printf("%s %s -> %s", name, array.domain().to_string().c_str(),
                info.description.c_str());
    if (align.is_aligned) {
      std::printf("   [aligned to %s via %s]", align.base_name.c_str(),
                  align.function.c_str());
    }
    std::printf("\n");
  }

  std::printf("\nDEALLOCATE(B): arrays aligned to a deallocated base become "
              "primaries (§6)\n");
  in.run("DEALLOCATE(B)\n");
  std::printf("A still mapped: %s\n",
              env.distribution_of("A").to_string().c_str());

  std::printf("\nTrace:\n");
  for (const std::string& line : in.trace()) {
    std::printf("  %s\n", line.c_str());
  }
  return 0;
}
